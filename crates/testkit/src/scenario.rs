//! Randomized full-stack scenarios: topologies, workloads, fault schedules,
//! and the runner that executes them with every invariant armed.
//!
//! A [`Scenario`] is a small, fully deterministic description — everything
//! the run does derives from its fields, so a failing scenario *is* the
//! reproducer. Scenarios serialize to JSON (hand-rolled against the
//! in-tree `serde_json` value model) so shrunken counterexamples can be
//! committed as regression files and replayed forever.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use uno::{CcKind, DegradationConfig, Experiment, ExperimentConfig, SchemeSpec};
use uno_sim::{
    FabricMode, FaultEntry, FaultKind, FaultSpec, FaultTarget, GilbertElliott, LinkId, PfcParams,
    Time, MILLIS, SECONDS,
};
use uno_workloads::FlowSpec;

use crate::invariant::{ArmedChecker, Violation};
use crate::spec::{FlowNetInfo, NetSpec};

/// Scheme table scenarios index into (keeps the JSON form stable).
pub const SCHEME_NAMES: [&str; 4] = ["uno", "uno_ecmp", "gemini", "mprdma_bbr"];

/// Resolve a scenario's scheme index.
pub fn scheme_by_index(i: u8) -> SchemeSpec {
    match i % 4 {
        0 => SchemeSpec::uno(),
        1 => SchemeSpec::uno_ecmp(),
        2 => SchemeSpec::gemini(),
        _ => SchemeSpec::mprdma_bbr(),
    }
}

/// One flow of the scenario workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowDesc {
    /// Source datacenter (0 or 1).
    pub src_dc: u8,
    /// Source host index within its DC.
    pub src_idx: u32,
    /// Destination datacenter (0 or 1).
    pub dst_dc: u8,
    /// Destination host index within its DC.
    pub dst_idx: u32,
    /// Message size in bytes.
    pub size: u64,
    /// Start time (ns).
    pub start: Time,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Fail one border link at `at`, reviving it `up_after` later.
    LinkDown {
        /// Pick from the forward (DC0→DC1) border set, else the reverse.
        fwd: bool,
        /// Index into the border-link set (taken modulo its length).
        idx: u32,
        /// Failure time (ns).
        at: Time,
        /// Downtime duration (ns); the link always comes back so every
        /// scenario is eventually completable.
        up_after: Time,
    },
    /// Apply a uniform random-loss process to one link for a window.
    Loss {
        /// Raw link index (taken modulo the topology's link count).
        link: u32,
        /// Loss probability in permille (1–999).
        permille: u32,
        /// Window start (ns).
        from: Time,
        /// Window end (ns).
        until: Time,
    },
    /// Gray failure through the fault plane: one border link silently
    /// drops packets while still looking up.
    Gray {
        /// Forward (DC0→DC1) border set, else the reverse.
        fwd: bool,
        /// Index into the border-link set (taken modulo its length).
        idx: u32,
        /// Drop probability in permille (clamped to 1–999).
        permille: u32,
        /// Onset time (ns).
        at: Time,
        /// Healing time (ns); `0` means the fault is permanent.
        until: Time,
    },
    /// Asymmetric blackhole: one *reverse* border link goes down for good —
    /// data still crosses, ACKs on that path die. Always permanent, so the
    /// runner arms graceful degradation and expects definite outcomes.
    Asym {
        /// Index into the reverse border-link set (modulo its length).
        idx: u32,
        /// Onset time (ns).
        at: Time,
    },
    /// Markov up/down flapping of one border link.
    Flap {
        /// Forward (DC0→DC1) border set, else the reverse.
        fwd: bool,
        /// Index into the border-link set (taken modulo its length).
        idx: u32,
        /// Mean up-dwell (ns).
        mtbf: Time,
        /// Mean down-dwell (ns).
        mttr: Time,
        /// Onset time (ns).
        at: Time,
        /// Healing time (ns); `0` means the fault is permanent.
        until: Time,
    },
}

impl Fault {
    /// True when the fault is guaranteed to heal, so every flow it touches
    /// can still finish. Permanent faults flip the runner into
    /// graceful-degradation mode instead.
    pub fn heals(&self) -> bool {
        match *self {
            Fault::LinkDown { .. } | Fault::Loss { .. } => true,
            Fault::Gray { until, .. } | Fault::Flap { until, .. } => until > 0,
            Fault::Asym { .. } => false,
        }
    }
}

/// A complete, deterministic full-stack test case.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Simulator seed (also the generation seed).
    pub seed: u64,
    /// Index into [`SCHEME_NAMES`].
    pub scheme: u8,
    /// Per-port switch buffering in KiB (varies queue pressure).
    pub queue_kib: u32,
    /// Workload.
    pub flows: Vec<FlowDesc>,
    /// Fault schedule.
    pub faults: Vec<Fault>,
    /// Hard run horizon (ns).
    pub horizon: Time,
    /// Arm the test-only block-accounting off-by-one in the transport
    /// (used to prove the checkers catch a real protocol bug).
    pub inject_block_bug: bool,
    /// Run on a lossless (PFC-enabled) fabric instead of the default lossy
    /// one. Serialized only when set, so pre-PFC scenario files parse (and
    /// hash) unchanged.
    pub lossless: bool,
    /// PFC XOFF threshold in permille of each port's queue capacity
    /// (`0` keeps the topology default). Only meaningful with `lossless`.
    pub pfc_xoff_permille: u32,
    /// Simulation engine: `0` runs serial, `N ≥ 1` runs the conservative
    /// parallel engine with N logical-process workers. LP mode is a
    /// distinct deterministic universe (worker-count independent, but not
    /// byte-identical to serial), so digests from the two engines must
    /// never be compared. Serialized only when nonzero, so pre-LP scenario
    /// files parse (and hash) unchanged.
    pub lp_jobs: usize,
}

/// What a checked scenario run produced.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Invariant violations (plus a synthetic `completion` violation when
    /// flows missed the horizon).
    pub violations: Vec<Violation>,
    /// Violations beyond the retention cap.
    pub suppressed: u64,
    /// Trace events the suite observed.
    pub events_seen: u64,
    /// True when every flow completed before the horizon.
    pub completed: bool,
    /// Simulated end time (ns).
    pub sim_end: Time,
}

impl Outcome {
    /// True when the run broke any invariant (including completion).
    pub fn failed(&self) -> bool {
        !self.violations.is_empty() || self.suppressed > 0
    }
}

impl Scenario {
    /// Generate a scenario from a seed. `quick` keeps workloads small
    /// enough for CI smoke runs (hundreds of scenarios per minute).
    pub fn generate(seed: u64, quick: bool) -> Scenario {
        let mut rng =
            SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0075_6e6f);
        let scheme = rng.gen_range(0..4u32) as u8;
        let queue_kib = [256u32, 512, 1024, 2048][rng.gen_range(0..4usize)];
        let max_pkts: u64 = if quick { 96 } else { 768 };
        let nflows = 1 + rng.gen_range(0..if quick { 5usize } else { 8 });
        let flows = (0..nflows)
            .map(|_| {
                let src_dc = rng.gen_range(0..2u32) as u8;
                let dst_dc = rng.gen_range(0..2u32) as u8;
                let src_idx = rng.gen_range(0..16u32);
                let mut dst_idx = rng.gen_range(0..16u32);
                if src_dc == dst_dc && dst_idx == src_idx {
                    dst_idx = (dst_idx + 1) % 16;
                }
                FlowDesc {
                    src_dc,
                    src_idx,
                    dst_dc,
                    dst_idx,
                    size: 4096 * (1 + rng.gen_range(0..max_pkts)),
                    start: rng.gen_range(0..2 * MILLIS),
                }
            })
            .collect();
        let nfaults = rng.gen_range(0..4usize);
        let faults = (0..nfaults)
            .map(|_| match rng.gen_range(0..10u32) {
                0..=2 => Fault::LinkDown {
                    fwd: rng.gen_bool(0.5),
                    idx: rng.gen_range(0..8u32),
                    at: rng.gen_range(0..4 * MILLIS),
                    up_after: MILLIS + rng.gen_range(0..40 * MILLIS),
                },
                3..=5 => {
                    let from = rng.gen_range(0..3 * MILLIS);
                    Fault::Loss {
                        link: rng.gen_range(0..4096u32),
                        permille: 1 + rng.gen_range(0..40u32),
                        from,
                        until: from + MILLIS + rng.gen_range(0..8 * MILLIS),
                    }
                }
                6 | 7 => {
                    let at = rng.gen_range(0..3 * MILLIS);
                    // One in four gray faults never heals: the stall
                    // watchdog, not recovery, must deliver the outcome.
                    let until = if rng.gen_bool(0.25) {
                        0
                    } else {
                        at + MILLIS + rng.gen_range(0..20 * MILLIS)
                    };
                    Fault::Gray {
                        fwd: rng.gen_bool(0.5),
                        idx: rng.gen_range(0..8u32),
                        permille: 1 + rng.gen_range(0..400u32),
                        at,
                        until,
                    }
                }
                8 => Fault::Asym {
                    idx: rng.gen_range(0..8u32),
                    at: rng.gen_range(0..3 * MILLIS),
                },
                _ => {
                    let at = rng.gen_range(0..3 * MILLIS);
                    let until = if rng.gen_bool(0.25) {
                        0
                    } else {
                        at + 2 * MILLIS + rng.gen_range(0..30 * MILLIS)
                    };
                    Fault::Flap {
                        fwd: rng.gen_bool(0.5),
                        idx: rng.gen_range(0..8u32),
                        mtbf: MILLIS / 2 + rng.gen_range(0..8 * MILLIS),
                        mttr: MILLIS / 2 + rng.gen_range(0..8 * MILLIS),
                        at,
                        until,
                    }
                }
            })
            .collect();
        Scenario {
            seed,
            scheme,
            queue_kib,
            flows,
            faults,
            horizon: 10 * SECONDS,
            inject_block_bug: false,
            lossless: false,
            pfc_xoff_permille: 0,
            lp_jobs: 0,
        }
    }

    /// Generate a lossless-fabric scenario: the same workload and fault
    /// machinery as [`Scenario::generate`], plus PFC arming with a
    /// seed-varied XOFF threshold — so the fuzzer explores PFC thresholds ×
    /// fault schedules × schemes.
    pub fn generate_lossless(seed: u64, quick: bool) -> Scenario {
        let mut sc = Scenario::generate(seed, quick);
        let mut rng =
            SmallRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F) ^ 0x0070_6663);
        sc.lossless = true;
        sc.pfc_xoff_permille = [350, 500, 650][rng.gen_range(0..3usize)];
        sc
    }

    // -- JSON encoding (hand-rolled over the in-tree Value model) ----------

    /// Encode as a JSON value tree.
    pub fn to_value(&self) -> Value {
        let flows = self
            .flows
            .iter()
            .map(|f| {
                obj(vec![
                    ("src_dc", Value::U64(f.src_dc as u64)),
                    ("src_idx", Value::U64(f.src_idx as u64)),
                    ("dst_dc", Value::U64(f.dst_dc as u64)),
                    ("dst_idx", Value::U64(f.dst_idx as u64)),
                    ("size", Value::U64(f.size)),
                    ("start", Value::U64(f.start)),
                ])
            })
            .collect();
        let faults = self
            .faults
            .iter()
            .map(|f| match *f {
                Fault::LinkDown {
                    fwd,
                    idx,
                    at,
                    up_after,
                } => obj(vec![
                    ("kind", Value::Str("link_down".to_string())),
                    ("fwd", Value::Bool(fwd)),
                    ("idx", Value::U64(idx as u64)),
                    ("at", Value::U64(at)),
                    ("up_after", Value::U64(up_after)),
                ]),
                Fault::Loss {
                    link,
                    permille,
                    from,
                    until,
                } => obj(vec![
                    ("kind", Value::Str("loss".to_string())),
                    ("link", Value::U64(link as u64)),
                    ("permille", Value::U64(permille as u64)),
                    ("from", Value::U64(from)),
                    ("until", Value::U64(until)),
                ]),
                Fault::Gray {
                    fwd,
                    idx,
                    permille,
                    at,
                    until,
                } => obj(vec![
                    ("kind", Value::Str("gray".to_string())),
                    ("fwd", Value::Bool(fwd)),
                    ("idx", Value::U64(idx as u64)),
                    ("permille", Value::U64(permille as u64)),
                    ("at", Value::U64(at)),
                    ("until", Value::U64(until)),
                ]),
                Fault::Asym { idx, at } => obj(vec![
                    ("kind", Value::Str("asym".to_string())),
                    ("idx", Value::U64(idx as u64)),
                    ("at", Value::U64(at)),
                ]),
                Fault::Flap {
                    fwd,
                    idx,
                    mtbf,
                    mttr,
                    at,
                    until,
                } => obj(vec![
                    ("kind", Value::Str("flap".to_string())),
                    ("fwd", Value::Bool(fwd)),
                    ("idx", Value::U64(idx as u64)),
                    ("mtbf", Value::U64(mtbf)),
                    ("mttr", Value::U64(mttr)),
                    ("at", Value::U64(at)),
                    ("until", Value::U64(until)),
                ]),
            })
            .collect();
        let mut fields = vec![
            ("seed", Value::U64(self.seed)),
            ("scheme", Value::U64(self.scheme as u64)),
            (
                "scheme_name",
                Value::Str(SCHEME_NAMES[(self.scheme % 4) as usize].to_string()),
            ),
            ("queue_kib", Value::U64(self.queue_kib as u64)),
            ("horizon", Value::U64(self.horizon)),
            ("inject_block_bug", Value::Bool(self.inject_block_bug)),
        ];
        // Lossless knobs appear only when armed: lossy scenario JSON (the
        // whole pre-PFC corpus) round-trips byte-identically.
        if self.lossless {
            fields.push(("lossless", Value::Bool(true)));
            fields.push((
                "pfc_xoff_permille",
                Value::U64(self.pfc_xoff_permille as u64),
            ));
        }
        // Same deal for the engine selector: serial scenarios (the whole
        // pre-LP corpus) round-trip byte-identically.
        if self.lp_jobs > 0 {
            fields.push(("lp_jobs", Value::U64(self.lp_jobs as u64)));
        }
        fields.push(("flows", Value::Array(flows)));
        fields.push(("faults", Value::Array(faults)));
        obj(fields)
    }

    /// Canonical single-line JSON (hashing, logging).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("scenario serialization")
    }

    /// Pretty JSON for repro/regression files.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("scenario serialization")
    }

    /// Decode from a JSON value tree.
    pub fn from_value(v: &Value) -> Result<Scenario, String> {
        let flows = arr(v, "flows")?
            .iter()
            .map(|f| {
                Ok(FlowDesc {
                    src_dc: num(f, "src_dc")? as u8,
                    src_idx: num(f, "src_idx")? as u32,
                    dst_dc: num(f, "dst_dc")? as u8,
                    dst_idx: num(f, "dst_idx")? as u32,
                    size: num(f, "size")?,
                    start: num(f, "start")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let faults = arr(v, "faults")?
            .iter()
            .map(|f| {
                let kind = f
                    .get("kind")
                    .and_then(|k| k.as_str())
                    .ok_or("fault missing kind")?;
                match kind {
                    "link_down" => Ok(Fault::LinkDown {
                        fwd: boolean(f, "fwd")?,
                        idx: num(f, "idx")? as u32,
                        at: num(f, "at")?,
                        up_after: num(f, "up_after")?,
                    }),
                    "loss" => Ok(Fault::Loss {
                        link: num(f, "link")? as u32,
                        permille: num(f, "permille")? as u32,
                        from: num(f, "from")?,
                        until: num(f, "until")?,
                    }),
                    "gray" => Ok(Fault::Gray {
                        fwd: boolean(f, "fwd")?,
                        idx: num(f, "idx")? as u32,
                        permille: num(f, "permille")? as u32,
                        at: num(f, "at")?,
                        until: num(f, "until")?,
                    }),
                    "asym" => Ok(Fault::Asym {
                        idx: num(f, "idx")? as u32,
                        at: num(f, "at")?,
                    }),
                    "flap" => Ok(Fault::Flap {
                        fwd: boolean(f, "fwd")?,
                        idx: num(f, "idx")? as u32,
                        mtbf: num(f, "mtbf")?,
                        mttr: num(f, "mttr")?,
                        at: num(f, "at")?,
                        until: num(f, "until")?,
                    }),
                    other => Err(format!("unknown fault kind `{other}`")),
                }
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Scenario {
            seed: num(v, "seed")?,
            scheme: num(v, "scheme")? as u8,
            queue_kib: num(v, "queue_kib")? as u32,
            flows,
            faults,
            horizon: num(v, "horizon")?,
            inject_block_bug: boolean(v, "inject_block_bug")?,
            // Absent in pre-PFC files: default lossy.
            lossless: matches!(v.get("lossless"), Some(Value::Bool(true))),
            pfc_xoff_permille: v
                .get("pfc_xoff_permille")
                .and_then(|x| x.as_f64())
                .map_or(0, |f| f as u32),
            // Absent in pre-LP files: default serial.
            lp_jobs: v
                .get("lp_jobs")
                .and_then(|x| x.as_f64())
                .map_or(0, |f| f as usize),
        })
    }

    /// Decode from JSON text.
    pub fn from_json(s: &str) -> Result<Scenario, String> {
        let v = serde_json::parse_value(s).map_err(|e| e.to_string())?;
        Scenario::from_value(&v)
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(v: &Value, key: &str) -> Result<u64, String> {
    let f = v
        .get(key)
        .and_then(|x| x.as_f64())
        .ok_or_else(|| format!("missing numeric field `{key}`"))?;
    if f < 0.0 || f.fract() != 0.0 {
        return Err(format!("field `{key}` is not a non-negative integer: {f}"));
    }
    Ok(f as u64)
}

fn boolean(v: &Value, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(format!("missing boolean field `{key}`")),
    }
}

fn arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    v.get(key)
        .and_then(|x| x.as_array())
        .ok_or_else(|| format!("missing array field `{key}`"))
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Build the experiment a scenario describes — config, topology, and the
/// normalised workload — without arming any tracer. Both the invariant
/// runner ([`run_scenario`]) and the golden-trace runner
/// ([`run_scenario_traced`]) start from this, so they execute the exact
/// same construction.
fn prepare_scenario(sc: &Scenario) -> (Experiment, Vec<FlowSpec>, bool) {
    let scheme = scheme_by_index(sc.scheme);
    let mut cfg = ExperimentConfig::quick(scheme, sc.seed);
    cfg.topo.queue_bytes = (sc.queue_kib.max(64) as u64) << 10;
    cfg.faults.block_accounting_off_by_one = sc.inject_block_bug;
    if sc.lossless {
        cfg.topo.fabric = FabricMode::Lossless;
        if sc.pfc_xoff_permille > 0 {
            let xoff = (sc.pfc_xoff_permille.clamp(50, 950) as f64) / 1000.0;
            cfg.topo.pfc = PfcParams {
                xoff_frac: xoff,
                xon_frac: 0.7 * xoff,
            };
        }
    }
    // A fault that never heals can starve a flow forever; arm the stall
    // watchdog and bounded retries so every flow still reaches a definite
    // outcome, and hold the run to that (weaker) expectation instead of
    // full completion. Healing-only scenarios keep the legacy contract.
    let permanent = sc.faults.iter().any(|f| !f.heals());
    if permanent {
        cfg.degradation = Some(DegradationConfig::default());
    }
    cfg.lp_jobs = sc.lp_jobs;
    let mut e = Experiment::new(cfg);

    // Normalise workload addressing against the actual topology and add
    // the flows.
    let per_dc = e.sim.topo.params.hosts_per_dc() as u32;
    let specs: Vec<FlowSpec> = sc
        .flows
        .iter()
        .map(|f| {
            let src_dc = f.src_dc % 2;
            let dst_dc = f.dst_dc % 2;
            let src_idx = f.src_idx % per_dc;
            let mut dst_idx = f.dst_idx % per_dc;
            if src_dc == dst_dc && dst_idx == src_idx {
                dst_idx = (dst_idx + 1) % per_dc;
            }
            FlowSpec {
                src_dc,
                src_idx,
                dst_dc,
                dst_idx,
                size: f.size.max(1),
                start: f.start,
            }
        })
        .collect();
    for s in &specs {
        e.add_spec(s);
    }
    (e, specs, permanent)
}

/// Execute a scenario on the full stack with the standard invariant suite
/// armed. Fault application is virtual-time driven (the run is stepped to
/// each loss-window boundary), so identical scenarios give identical
/// outcomes.
pub fn run_scenario(sc: &Scenario) -> Outcome {
    let scheme = scheme_by_index(sc.scheme);
    let (mut e, specs, permanent) = prepare_scenario(sc);

    // Build the invariant spec from the realised topology and flow table.
    let net_spec = {
        let topo = &e.sim.topo;
        let queue_capacity: Vec<u64> = topo
            .links
            .ids()
            .map(|l| topo.links.queue(l).capacity)
            .collect();
        let flows = specs
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let src = topo.host(f.src_dc, f.src_idx);
                let dst = topo.host(f.dst_dc, f.dst_idx);
                let inter = f.src_dc != f.dst_dc;
                // `base_rtt` is the nominal worst-case class RTT (the CC's
                // configuration input); the *floor* for measured samples is
                // the actual shortest path: per-link intra delay is
                // intra_rtt/12 (topology builder), same-rack paths cross
                // only 2 links each way. Inter paths always traverse the
                // full 9-hop route, so their floor is the class RTT itself.
                let base_rtt = topo.base_rtt(src, dst);
                let d_intra = (topo.params.intra_rtt / 12).max(1);
                let rtt_floor = if inter {
                    base_rtt
                } else {
                    2 * topo.path_hops(src, dst) as u64 * d_intra
                };
                let mtu = topo.params.mtu;
                let bdp = topo.params.link_bps as f64 / 8.0 * (base_rtt as f64 / 1e9);
                // Window-clamped controllers stay within 2xBDP; BBR has no
                // hard clamp (cwnd tracks its own bandwidth estimate), so
                // its ceiling is a sanity multiple, not a tight bound.
                let bbr = inter && matches!(scheme.cc, CcKind::MprdmaBbr);
                let cwnd_max = if bbr {
                    8.0 * bdp + 64.0 * mtu as f64
                } else {
                    2.0 * bdp + 16.0 * mtu as f64
                };
                FlowNetInfo {
                    id: i as u32,
                    size: f.size,
                    mtu,
                    ec: scheme
                        .ec_for(inter)
                        .map(|p| (p.data as u32, p.parity as u32)),
                    rtt_floor,
                    cwnd_max,
                }
            })
            .collect();
        NetSpec {
            queue_capacity,
            flows,
            liveness_grace: SECONDS / 2,
            max_nacks_per_block: 8,
            require_outcome: permanent,
            stall_horizon: 3 * SECONDS,
            // PFC detectors are always armed; on a lossy fabric they see no
            // pause events and stay silent. Storm threshold: >90% pause
            // duty over any 10ms window is spreading, not flow control.
            pfc_storm_window: 10 * MILLIS,
            pfc_storm_duty: 0.9,
            pause_grace: SECONDS,
        }
    };
    let armed = ArmedChecker::new(net_spec);
    e.sim.set_tracer(armed.tracer());

    drive_scenario(&mut e, sc);

    let sim_end = e.sim.now();
    let completed = e.sim.num_completed() == specs.len();
    let report = armed.finish(sim_end);
    let mut violations = report.violations;
    if permanent {
        // Some flows may legitimately never finish; graceful degradation
        // must still give every one a definite outcome.
        let terminated = e.sim.num_terminated();
        if terminated != specs.len() {
            violations.push(Violation {
                invariant: "completion",
                t: sim_end,
                flow: None,
                link: None,
                detail: format!(
                    "{}/{} flows reached a definite outcome ({} completed, {} \
                     failed) despite the armed watchdog: a permanent fault \
                     must stall or abort flows, never wedge them",
                    terminated,
                    specs.len(),
                    e.sim.num_completed(),
                    e.sim.failures.len()
                ),
            });
        }
    } else if !completed {
        violations.push(Violation {
            invariant: "completion",
            t: sim_end,
            flow: None,
            link: None,
            detail: format!(
                "{}/{} flows completed by the horizon (all faults heal, so \
                 every flow must finish)",
                e.sim.num_completed(),
                specs.len()
            ),
        });
    }
    Outcome {
        violations,
        suppressed: report.suppressed,
        events_seen: report.events_seen,
        completed,
        sim_end,
    }
}

/// What [`run_scenario_traced`] produced, alongside whatever the caller's
/// tracer captured: the byte-stable per-run tables the golden-trace suite
/// digests.
#[derive(Clone, Debug)]
pub struct TracedRun {
    /// Simulated end time (ns).
    pub sim_end: Time,
    /// Flows that completed successfully.
    pub completed: usize,
    /// Flows that reached any definite outcome.
    pub terminated: usize,
    /// Canonical JSON of the final counter snapshot (sorted keys).
    pub counters: String,
    /// One stable text line per completion record, in completion order.
    pub fcts: Vec<String>,
}

/// Execute a scenario with a caller-supplied tracer (typically a JSONL
/// sink) instead of the invariant suite. Construction and fault driving are
/// shared with [`run_scenario`], so for a given scenario the two runners
/// execute the same simulation event-for-event — this is what lets the
/// golden-trace differential tests pin the engine's behaviour to committed
/// digests.
pub fn run_scenario_traced(sc: &Scenario, tracer: uno_sim::Tracer) -> TracedRun {
    let (mut e, specs, _) = prepare_scenario(sc);
    e.sim.set_tracer(tracer);
    drive_scenario(&mut e, sc);
    let fcts = e
        .sim
        .fcts
        .iter()
        .map(|r| {
            format!(
                "flow={} size={} start={} end={} class={:?}",
                r.flow.0, r.size, r.start, r.end, r.class
            )
        })
        .collect();
    let terminated = e.sim.num_terminated();
    debug_assert!(terminated <= specs.len());
    TracedRun {
        sim_end: e.sim.now(),
        completed: e.sim.num_completed(),
        terminated,
        counters: e.sim.counter_snapshot().to_json(),
        fcts,
    }
}

/// Schedule a scenario's faults and drive the simulation to its horizon.
/// Must be called after the tracer is armed so the trace sees every event.
fn drive_scenario(e: &mut Experiment, sc: &Scenario) {
    let nlinks = e.sim.topo.links.len() as u32;
    let border_fwd = e.sim.topo.border_forward.clone();
    let border_rev = e.sim.topo.border_reverse.clone();

    // Schedule link failures up front; loss windows need live edits to the
    // loss process, so collect their boundaries and step through them.
    // Gray/asym/flap faults go through the fault plane, which drives its
    // own transitions off the event queue.
    let mut loss_edges: Vec<(Time, u32, Option<u32>)> = Vec::new();
    let mut plane: Vec<FaultEntry> = Vec::new();
    let border_target = |fwd: bool, idx: u32| -> Option<FaultTarget> {
        let set = if fwd { &border_fwd } else { &border_rev };
        if set.is_empty() {
            return None;
        }
        let idx = idx as usize % set.len();
        Some(if fwd {
            FaultTarget::BorderForward { idx }
        } else {
            FaultTarget::BorderReverse { idx }
        })
    };
    // `until == 0` encodes permanence; any other value is clamped past the
    // onset so the entry always passes fault-plane validation.
    let heal = |at: Time, until: Time| -> Option<Time> { (until > 0).then_some(until.max(at + 1)) };
    for f in &sc.faults {
        match *f {
            Fault::LinkDown {
                fwd,
                idx,
                at,
                up_after,
            } => {
                let set = if fwd { &border_fwd } else { &border_rev };
                if set.is_empty() {
                    continue;
                }
                let link = set[idx as usize % set.len()];
                e.sim.schedule_link_down(link, at);
                e.sim.schedule_link_up(link, at + up_after.max(1));
            }
            Fault::Loss {
                link,
                permille,
                from,
                until,
            } => {
                let l = link % nlinks;
                loss_edges.push((from, l, Some(permille.clamp(1, 999))));
                loss_edges.push((until.max(from + 1), l, None));
            }
            Fault::Gray {
                fwd,
                idx,
                permille,
                at,
                until,
            } => {
                if let Some(target) = border_target(fwd, idx) {
                    plane.push(FaultEntry {
                        target,
                        kind: FaultKind::GrayLoss {
                            p: permille.clamp(1, 999) as f64 / 1000.0,
                        },
                        at,
                        until: heal(at, until),
                    });
                }
            }
            Fault::Asym { idx, at } => {
                if let Some(target) = border_target(false, idx) {
                    plane.push(FaultEntry {
                        target,
                        kind: FaultKind::Down,
                        at,
                        until: None,
                    });
                }
            }
            Fault::Flap {
                fwd,
                idx,
                mtbf,
                mttr,
                at,
                until,
            } => {
                if let Some(target) = border_target(fwd, idx) {
                    plane.push(FaultEntry {
                        target,
                        kind: FaultKind::Flapping {
                            mtbf: mtbf.max(1),
                            mttr: mttr.max(1),
                        },
                        at,
                        until: heal(at, until),
                    });
                }
            }
        }
    }
    if !plane.is_empty() {
        e.sim
            .install_faults(&FaultSpec { faults: plane })
            .expect("scenario fault plane resolves against its own topology");
    }
    loss_edges.sort_by_key(|&(t, l, on)| (t, l, on.is_none()));
    for (t, l, edge) in loss_edges {
        e.sim.run_until(t.min(sc.horizon));
        match edge {
            Some(pm) => e
                .sim
                .set_link_loss(LinkId(l), GilbertElliott::uniform(pm as f64 / 1000.0)),
            None => e.sim.topo.links.set_loss(LinkId(l), None),
        }
    }
    e.sim.run_until(sc.horizon);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_varied() {
        let a = Scenario::generate(42, true);
        let b = Scenario::generate(42, true);
        assert_eq!(a, b);
        let c = Scenario::generate(43, true);
        assert_ne!(a, c);
        assert!(!a.flows.is_empty());
    }

    #[test]
    fn json_round_trip_is_lossless() {
        for seed in 0..20 {
            let sc = Scenario::generate(seed, true);
            let back = Scenario::from_json(&sc.to_json()).unwrap();
            assert_eq!(sc, back, "seed {seed}");
            let back2 = Scenario::from_json(&sc.to_json_pretty()).unwrap();
            assert_eq!(sc, back2, "seed {seed} (pretty)");
        }
    }

    #[test]
    fn new_fault_kinds_round_trip_and_classify() {
        let sc = Scenario {
            seed: 3,
            scheme: 0,
            queue_kib: 512,
            flows: vec![FlowDesc {
                src_dc: 0,
                src_idx: 0,
                dst_dc: 1,
                dst_idx: 1,
                size: 8 * 4096,
                start: 0,
            }],
            faults: vec![
                Fault::Gray {
                    fwd: true,
                    idx: 0,
                    permille: 50,
                    at: 0,
                    until: 5 * MILLIS,
                },
                Fault::Asym { idx: 1, at: MILLIS },
                Fault::Flap {
                    fwd: false,
                    idx: 2,
                    mtbf: MILLIS,
                    mttr: MILLIS,
                    at: 0,
                    until: 0,
                },
            ],
            horizon: 10 * SECONDS,
            inject_block_bug: false,
            lossless: false,
            pfc_xoff_permille: 0,
            lp_jobs: 0,
        };
        let back = Scenario::from_json(&sc.to_json_pretty()).unwrap();
        assert_eq!(sc, back);
        assert!(sc.faults[0].heals());
        assert!(!sc.faults[1].heals()); // asym is always permanent
        assert!(!sc.faults[2].heals()); // until == 0 means permanent
    }

    #[test]
    fn permanent_blackhole_scenario_degrades_gracefully() {
        // Every reverse border link blackholed: the inter-DC flow can never
        // see an ACK, so only graceful degradation keeps this scenario
        // clean — and the run must end well before the horizon.
        let sc = Scenario {
            seed: 7,
            scheme: 0,
            queue_kib: 512,
            flows: vec![
                FlowDesc {
                    src_dc: 0,
                    src_idx: 0,
                    dst_dc: 1,
                    dst_idx: 1,
                    size: 64 * 4096,
                    start: 0,
                },
                FlowDesc {
                    src_dc: 0,
                    src_idx: 2,
                    dst_dc: 0,
                    dst_idx: 3,
                    size: 16 * 4096,
                    start: 0,
                },
            ],
            faults: (0..8).map(|idx| Fault::Asym { idx, at: MILLIS }).collect(),
            horizon: 10 * SECONDS,
            inject_block_bug: false,
            lossless: false,
            pfc_xoff_permille: 0,
            lp_jobs: 0,
        };
        let out = run_scenario(&sc);
        assert!(
            !out.failed(),
            "first violation: {:?} (of {})",
            out.violations.first(),
            out.violations.len()
        );
        assert!(!out.completed, "the blackholed inter flow cannot complete");
        assert!(out.sim_end < sc.horizon, "the stalled flow wedged the run");
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Scenario::from_json("{}").is_err());
        assert!(Scenario::from_json("not json").is_err());
        let sc = Scenario::generate(1, true);
        let bad = sc.to_json().replace("\"seed\"", "\"sneed\"");
        assert!(Scenario::from_json(&bad).is_err());
    }
}
