//! Greedy scenario shrinking and reproducer files.
//!
//! When a fuzzed scenario breaks an invariant, the raw case is usually
//! noisy: extra flows, irrelevant faults, oversized messages. The shrinker
//! repeatedly tries structural simplifications (drop a fault, drop a flow,
//! halve a message, zero a start time) and keeps any change that still
//! fails, converging on a minimal reproducer that is written to
//! `results/repro_<hash>.json`.

use std::path::{Path, PathBuf};

use crate::scenario::{run_scenario, Scenario};

/// Result of a shrink session.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimal still-failing scenario.
    pub scenario: Scenario,
    /// Scenario executions spent.
    pub runs: usize,
    /// Accepted simplification steps.
    pub steps: usize,
}

/// Candidate one-step simplifications of `sc`, most aggressive first.
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    for j in 0..sc.faults.len() {
        let mut c = sc.clone();
        c.faults.remove(j);
        out.push(c);
    }
    if sc.flows.len() > 1 {
        for i in 0..sc.flows.len() {
            let mut c = sc.clone();
            c.flows.remove(i);
            out.push(c);
        }
    }
    for i in 0..sc.flows.len() {
        if sc.flows[i].size > 4096 {
            let mut c = sc.clone();
            c.flows[i].size = (sc.flows[i].size / 2).max(4096);
            out.push(c);
        }
        if sc.flows[i].start > 0 {
            let mut c = sc.clone();
            c.flows[i].start = 0;
            out.push(c);
        }
    }
    out
}

/// Greedily shrink a failing scenario, spending at most `budget` extra
/// scenario executions. The input must fail; the output still fails.
pub fn shrink(sc: &Scenario, budget: usize) -> ShrinkResult {
    debug_assert!(run_scenario(sc).failed(), "shrink needs a failing input");
    let mut cur = sc.clone();
    let mut runs = 0usize;
    let mut steps = 0usize;
    'outer: loop {
        for cand in candidates(&cur) {
            if runs >= budget {
                break 'outer;
            }
            runs += 1;
            if run_scenario(&cand).failed() {
                cur = cand;
                steps += 1;
                continue 'outer; // restart from the simplified scenario
            }
        }
        break; // no candidate kept the failure: minimal
    }
    ShrinkResult {
        scenario: cur,
        runs,
        steps,
    }
}

/// FNV-1a hash of the scenario's canonical JSON, as 16 hex digits. Stable
/// across runs and platforms, so repro filenames are deterministic.
pub fn repro_hash(sc: &Scenario) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in sc.to_json().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Write the scenario to `<dir>/repro_<hash>.json` and return the path.
pub fn write_repro(sc: &Scenario, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("repro_{}.json", repro_hash(sc)));
    std::fs::write(&path, sc.to_json_pretty() + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let a = Scenario::generate(5, true);
        assert_eq!(repro_hash(&a), repro_hash(&a.clone()));
        let mut b = a.clone();
        b.seed += 1;
        assert_ne!(repro_hash(&a), repro_hash(&b));
    }

    #[test]
    fn candidates_only_simplify() {
        let sc = Scenario::generate(9, true);
        for c in candidates(&sc) {
            let smaller = c.faults.len() < sc.faults.len()
                || c.flows.len() < sc.flows.len()
                || c.flows
                    .iter()
                    .zip(&sc.flows)
                    .any(|(a, b)| a.size < b.size || a.start < b.start);
            assert!(smaller, "candidate did not simplify: {c:?}");
        }
    }
}
