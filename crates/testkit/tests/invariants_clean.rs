//! The full stack holds every protocol invariant on handcrafted stress
//! scenarios (per scheme, with faults) and on a band of generated fuzz
//! seeds. This is the deterministic core of what `uno-fuzz` sweeps more
//! widely in CI.

use uno_sim::MILLIS;
use uno_testkit::{run_scenario, Fault, FlowDesc, Scenario};

fn assert_clean(sc: &Scenario, what: &str) {
    let out = run_scenario(sc);
    assert!(
        !out.failed(),
        "{what}: {} violation(s), first: {:?}",
        out.violations.len(),
        out.violations.first()
    );
    assert!(out.completed, "{what}: flows missed the horizon");
    assert!(out.events_seen > 0, "{what}: tracer saw no events");
}

/// Mixed intra/inter workload under loss and a healed border-link failure.
fn stress(scheme: u8) -> Scenario {
    Scenario {
        seed: 11 + scheme as u64,
        scheme,
        queue_kib: 512,
        flows: vec![
            // Inter-DC flow crossing the faulted border.
            FlowDesc {
                src_dc: 0,
                src_idx: 0,
                dst_dc: 1,
                dst_idx: 4,
                size: 48 * 4096,
                start: 0,
            },
            // Same-rack short flow (tests the tight RTT-floor path).
            FlowDesc {
                src_dc: 0,
                src_idx: 1,
                dst_dc: 0,
                dst_idx: 2,
                size: 6 * 4096,
                start: 100_000,
            },
            // Cross-pod intra flow competing for fabric links.
            FlowDesc {
                src_dc: 1,
                src_idx: 3,
                dst_dc: 1,
                dst_idx: 12,
                size: 64 * 4096,
                start: MILLIS / 2,
            },
        ],
        faults: vec![
            Fault::LinkDown {
                fwd: true,
                idx: 0,
                at: MILLIS,
                up_after: 5 * MILLIS,
            },
            Fault::Loss {
                link: 17,
                permille: 20,
                from: 0,
                until: 4 * MILLIS,
            },
        ],
        horizon: 10_000 * MILLIS,
        inject_block_bug: false,
        lossless: false,
        pfc_xoff_permille: 0,
        lp_jobs: 0,
    }
}

#[test]
fn uno_holds_invariants_under_faults() {
    assert_clean(&stress(0), "uno");
}

#[test]
fn uno_ecmp_holds_invariants_under_faults() {
    assert_clean(&stress(1), "uno_ecmp");
}

#[test]
fn gemini_holds_invariants_under_faults() {
    assert_clean(&stress(2), "gemini");
}

#[test]
fn mprdma_bbr_holds_invariants_under_faults() {
    assert_clean(&stress(3), "mprdma_bbr");
}

#[test]
fn generated_seed_band_is_clean() {
    // A small deterministic slice of the fuzzer's search space; CI sweeps
    // seeds 0..200 via the uno-fuzz smoke job.
    for seed in 0..24 {
        let sc = Scenario::generate(seed, true);
        assert_clean(&sc, &format!("generated seed {seed}"));
    }
}
