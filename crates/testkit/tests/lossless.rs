//! Lossless-fabric robustness tests: a deliberately planted high-fan-in
//! incast must trip the PFC-storm detector on a real simulated run (not a
//! synthetic trace), while the pause protocol itself stays disciplined —
//! and the identical workload on a lossy fabric must emit no PFC activity
//! at all.

use std::sync::{Arc, Mutex};

use uno::{Experiment, ExperimentConfig, SchemeSpec};
use uno_sim::{
    FabricMode, FaultEntry, FaultKind, FaultSpec, FaultTarget, PfcParams, RedParams, SampleConfig,
    Time, TopologyParams, TraceConfig, TraceEvent, Tracer, MILLIS, SECONDS,
};
use uno_testkit::invariant::{
    InvariantSuite, PauseDiscipline, PauseLiveness, PfcDeadlockDetector, PfcStormDetector,
};
use uno_testkit::NetSpec;
use uno_workloads::FlowSpec;

/// A tiny-buffer lossless fabric under a 14-to-1 incast whose victim drain
/// link is degraded to 5% line rate: the victim ToR port stays pinned above
/// XOFF, pauses propagate up the tree, and the pause duty cycle at the
/// congested port pins near 100% — the congestion-spreading storm that PFC
/// is infamous for.
fn storm_experiment(fabric: FabricMode) -> (Experiment, Vec<FlowSpec>) {
    let mut cfg = ExperimentConfig::quick(SchemeSpec::uno(), 4242);
    cfg.topo = TopologyParams::small();
    cfg.topo.fabric = fabric;
    // Shallow switch buffers with an aggressive XOFF, and ECN marking
    // pushed above the XOFF threshold so congestion control never sees a
    // mark before PFC engages: pauses become the dominant flow-control
    // mechanism. This is the classical mis-tuning that produces pause
    // storms on real lossless fabrics. The XOFF headroom (capacity - xoff)
    // must still absorb one propagation delay of line-rate arrivals from
    // every feeder (~58 KiB here), or PFC itself would drop.
    cfg.topo.queue_bytes = 256 << 10;
    cfg.topo.red = RedParams {
        min_frac: 0.95,
        max_frac: 1.0,
    };
    cfg.topo.pfc = PfcParams {
        xoff_frac: 0.25,
        xon_frac: 0.15,
    };
    cfg.telemetry = Some(SampleConfig::every(100_000));
    let mut exp = Experiment::new(cfg);
    let per_dc = exp.sim.topo.params.hosts_per_dc() as u32;
    let specs: Vec<FlowSpec> = (1..per_dc.min(15))
        .map(|i| FlowSpec {
            src_dc: 0,
            src_idx: i,
            dst_dc: 0,
            dst_idx: 0,
            size: 4 << 20,
            start: 0,
        })
        .collect();
    exp.add_specs(&specs);
    // The victim's drain link limps at 5% line rate for the whole run:
    // ack-clocking alone can no longer match arrival to departure, so the
    // victim port lives above XOFF and the pause tree spreads upstream.
    let victim_drain = exp.sim.topo.host_downlink(exp.sim.topo.host(0, 0));
    exp.sim
        .install_faults(&FaultSpec {
            faults: vec![FaultEntry {
                target: FaultTarget::Link { id: victim_drain.0 },
                kind: FaultKind::Degraded { factor: 0.05 },
                at: 0,
                until: None,
            }],
        })
        .expect("valid fault spec");
    (exp, specs)
}

fn pfc_spec(exp: &Experiment, window: Time, duty: f64) -> NetSpec {
    NetSpec {
        queue_capacity: exp
            .sim
            .topo
            .links
            .ids()
            .map(|l| exp.sim.topo.links.queue(l).capacity)
            .collect(),
        flows: vec![],
        liveness_grace: SECONDS / 2,
        max_nacks_per_block: 8,
        require_outcome: false,
        stall_horizon: 0,
        pfc_storm_window: window,
        pfc_storm_duty: duty,
        pause_grace: SECONDS,
    }
}

/// Shared `(pauses, resumes)` tally of PFC trace events seen.
type PfcEventCounts = Arc<Mutex<(u64, u64)>>;

/// Arm `suite` on the experiment via a callback tracer, also counting PFC
/// trace events as they stream by.
fn arm(
    exp: &mut Experiment,
    suite: InvariantSuite,
) -> (Arc<Mutex<InvariantSuite>>, PfcEventCounts) {
    let suite = Arc::new(Mutex::new(suite));
    let pfc_events = Arc::new(Mutex::new((0u64, 0u64)));
    let s = Arc::clone(&suite);
    let n = Arc::clone(&pfc_events);
    exp.sim.set_tracer(Tracer::callback(
        Box::new(move |ev| {
            match ev {
                TraceEvent::PfcPause { .. } => n.lock().unwrap().0 += 1,
                TraceEvent::PfcResume { .. } => n.lock().unwrap().1 += 1,
                _ => {}
            }
            s.lock().unwrap().on_event(ev);
        }),
        TraceConfig::all(),
    ));
    (suite, pfc_events)
}

#[test]
fn planted_incast_storm_is_detected_and_pause_protocol_holds() {
    let (mut exp, specs) = storm_experiment(FabricMode::Lossless);
    let spec = pfc_spec(&exp, MILLIS, 0.5);
    let suite = InvariantSuite::with_checkers(
        spec,
        vec![
            Box::<PfcStormDetector>::default(),
            Box::<PauseDiscipline>::default(),
            Box::<PfcDeadlockDetector>::default(),
            Box::<PauseLiveness>::default(),
        ],
    );
    let (suite, pfc_events) = arm(&mut exp, suite);

    let r = exp.run(10 * SECONDS);
    let report = suite.lock().unwrap().finalize(r.sim_time);

    let (pauses, resumes) = *pfc_events.lock().unwrap();
    assert!(pauses > 0, "a lossless incast must assert pauses");
    assert_eq!(pauses, resumes, "every pause frame must be matched");

    // The planted storm fires; the protocol-discipline checks stay clean
    // (up-down fat-tree routing cannot form a cyclic buffer dependency,
    // HOL blocking holds, and every pause releases).
    let storms: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.invariant == "pfc-storm")
        .collect();
    assert!(
        !storms.is_empty(),
        "the planted incast must trip the storm detector"
    );
    assert!(
        storms[0].detail.contains("depth"),
        "storm report carries pause-tree depth attribution: {}",
        storms[0].detail
    );
    // Congestion spreading: one degraded 5-Gbps access link paused far more
    // than its own port — the storm engulfs links several hops upstream.
    assert!(
        storms.len() >= 8,
        "the storm must spread beyond the victim's direct feeders, got {}",
        storms.len()
    );
    assert!(
        storms.iter().any(|v| v.detail.contains("depth 3")
            || v.detail.contains("depth 4")
            || v.detail.contains("depth 5")),
        "pause-tree depth attribution must show multi-hop spreading"
    );
    for v in &report.violations {
        assert_eq!(
            v.invariant, "pfc-storm",
            "only the storm may fire, got: {v}"
        );
    }

    // Lossless means lossless: no queue ever dropped a packet, yet every
    // flow still completed (PFC throttled them instead).
    assert_eq!(r.stats.queue_drops, 0, "PFC must prevent queue overflow");
    assert_eq!(r.fcts.len(), specs.len(), "all incast flows complete");
    assert!(r.manifest.counters.get("pfc.pauses") > 0);
    assert!(r.manifest.counters.get("pfc.paused_ns") > 0);
}

#[test]
fn lossy_fabric_same_workload_has_zero_pfc_activity() {
    let (mut exp, _specs) = storm_experiment(FabricMode::Lossy);
    let spec = pfc_spec(&exp, MILLIS, 0.5);
    let suite = InvariantSuite::with_checkers(
        spec,
        vec![
            Box::<PfcStormDetector>::default(),
            Box::<PauseDiscipline>::default(),
            Box::<PfcDeadlockDetector>::default(),
            Box::<PauseLiveness>::default(),
        ],
    );
    let (suite, pfc_events) = arm(&mut exp, suite);

    let r = exp.run(10 * SECONDS);
    let report = suite.lock().unwrap().finalize(r.sim_time);

    let (pauses, resumes) = *pfc_events.lock().unwrap();
    assert_eq!((pauses, resumes), (0, 0), "lossy fabric must never pause");
    assert!(report.violations.is_empty());
    assert_eq!(r.manifest.counters.get("pfc.pauses"), 0);
    // Same shallow buffers without PFC: the incast overflows and drops.
    assert!(r.stats.queue_drops > 0, "lossy incast should tail-drop");
}

#[test]
fn lossless_runs_are_deterministic() {
    let run = || {
        let (exp, _) = storm_experiment(FabricMode::Lossless);
        let r = exp.run(10 * SECONDS);
        (
            r.sim_time,
            r.manifest.events_processed,
            r.manifest.counters.get("pfc.pauses"),
            serde_json::to_string(&r.telemetry).unwrap(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    // Telemetry carries pause series for the paused links.
    assert!(a.3.contains("paused_ns"), "pause telemetry must be sampled");
}
