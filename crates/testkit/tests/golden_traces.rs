//! Differential golden-trace regression suite.
//!
//! Every cell runs a fully seeded simulation with the JSONL tracer armed
//! and digests the complete event stream plus the byte-stable run tables
//! (counter snapshot, FCT records, telemetry section). The digests are
//! committed in `golden/trace_digests.json`; an engine refactor passes this
//! suite only if it is *byte-identical* to the engine that generated the
//! goldens — same packets, same queue decisions, same RNG draws, same JSON.
//!
//! To regenerate after an intentional behaviour change:
//!
//! ```text
//! UNO_UPDATE_GOLDEN=1 cargo test -p uno-testkit --test golden_traces
//! ```
//!
//! and commit the updated golden file with an explanation of why the
//! simulated behaviour legitimately changed.

use std::io::Write as _;
use std::sync::{Arc, Mutex};

use serde::Value;
use uno::sim::{SampleConfig, TopologyParams, MICROS, SECONDS};
use uno::{Experiment, ExperimentConfig};
use uno_sim::{TraceConfig, Tracer};
use uno_testkit::digest::{hex, Sha256};
use uno_testkit::scenario::SCHEME_NAMES;
use uno_testkit::{run_scenario_traced, scheme_by_index, Scenario};
use uno_workloads::incast;

/// A `Write` sink sharing one buffer with the test, so the tracer can be
/// moved into the simulator while we keep a handle on the bytes.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn take(&self) -> Vec<u8> {
        std::mem::take(&mut self.0.lock().unwrap())
    }
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("trace_digests.json")
}

/// Digest one cell: the raw JSONL trace followed by labelled sections for
/// every other byte-stable artifact of the run.
fn digest(trace: &[u8], sections: &[(&str, &str)]) -> String {
    let mut h = Sha256::new();
    h.update(trace);
    for (name, body) in sections {
        h.update(b"\n#");
        h.update(name.as_bytes());
        h.update(b"\n");
        h.update(body.as_bytes());
    }
    hex(&h.finish())
}

/// One fig08-slice cell: an incast on the small 2-DC topology with the
/// tracer on, digesting trace + counters + FCT table.
fn fig08_cell(scheme_idx: u8, n_intra: usize, n_inter: usize, seed: u64) -> String {
    let topo = TopologyParams::small();
    let hosts = topo.hosts_per_dc() as u32;
    let mut cfg = ExperimentConfig::quick(scheme_by_index(scheme_idx), seed);
    cfg.topo = topo;
    let mut exp = Experiment::new(cfg);
    exp.add_specs(&incast(n_intra, n_inter, 1 << 20, hosts));
    let buf = SharedBuf::default();
    exp.sim.set_tracer(Tracer::jsonl_writer(
        Box::new(buf.clone()),
        TraceConfig::all(),
    ));
    let mut r = exp.run(60 * SECONDS);
    assert!(r.all_completed, "golden incast cell must complete");
    r.manifest.wall_seconds = 0.0;
    r.manifest.events_per_sec = 0.0;
    let fcts: Vec<String> = r
        .fcts
        .iter()
        .map(|f| {
            format!(
                "flow={} size={} start={} end={} class={:?}",
                f.flow.0, f.size, f.start, f.end, f.class
            )
        })
        .collect();
    digest(
        &buf.take(),
        &[
            ("manifest", &r.manifest.to_json()),
            ("fcts", &fcts.join("\n")),
        ],
    )
}

/// One telemetry cell: same incast, sampler armed at a fine interval; the
/// digest covers the serialized telemetry section (per-link/per-flow series
/// in id order), pinning the sampler's iteration order.
fn telemetry_cell(seed: u64) -> String {
    let topo = TopologyParams::small();
    let hosts = topo.hosts_per_dc() as u32;
    let mut cfg = ExperimentConfig::quick(scheme_by_index(0), seed);
    cfg.topo = topo;
    cfg.telemetry = Some(SampleConfig::every(20 * MICROS));
    let mut exp = Experiment::new(cfg);
    exp.add_specs(&incast(3, 1, 1 << 20, hosts));
    let r = exp.run(60 * SECONDS);
    assert!(r.all_completed);
    let telemetry = serde_json::to_string(&r.telemetry.expect("telemetry was enabled")).unwrap();
    assert!(telemetry.contains("\"links\"") && telemetry.contains("\"cwnd\""));
    digest(&[], &[("telemetry", &telemetry)])
}

/// The committed calendar-stress regression scenario (faults, flapping,
/// 512 KiB queues) through the scenario runner with a JSONL tracer.
fn calendar_stress_cell() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("regressions")
        .join("calendar_overflow_flap_completes.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let sc = Scenario::from_json(&text).expect("regression scenario parses");
    let buf = SharedBuf::default();
    let tracer = Tracer::jsonl_writer(Box::new(buf.clone()), TraceConfig::all());
    let run = run_scenario_traced(&sc, tracer);
    assert!(run.terminated > 0, "scenario must produce outcomes");
    digest(
        &buf.take(),
        &[
            ("counters", &run.counters),
            ("fcts", &run.fcts.join("\n")),
            ("sim_end", &run.sim_end.to_string()),
        ],
    )
}

/// One lossless cell: a seed-derived PFC-enabled scenario through the
/// scenario runner with a JSONL tracer. Pins the entire pause machinery —
/// XOFF/XON crossings, pause-frame propagation timing, HOL blocking, and
/// resume kicks — byte-for-byte, alongside the usual counters and FCTs.
fn lossless_cell(seed: u64) -> String {
    let sc = Scenario::generate_lossless(seed, true);
    assert!(sc.lossless, "generator must arm PFC");
    let buf = SharedBuf::default();
    let tracer = Tracer::jsonl_writer(Box::new(buf.clone()), TraceConfig::all());
    let run = run_scenario_traced(&sc, tracer);
    assert!(
        run.terminated > 0,
        "lossless scenario must produce outcomes"
    );
    digest(
        &buf.take(),
        &[
            ("counters", &run.counters),
            ("fcts", &run.fcts.join("\n")),
            ("sim_end", &run.sim_end.to_string()),
        ],
    )
}

/// One parallel-engine cell: a seed-derived scenario on the conservative
/// LP engine with `jobs` workers, traced and digested like every other
/// cell. LP mode is a distinct deterministic universe from the serial
/// engine (its own committed digests, never compared against serial
/// cells); *within* that universe the digest must be byte-identical for
/// any worker count — that is the contract
/// [`lp_digests_are_worker_count_independent`] pins.
fn lp_cell(seed: u64, jobs: usize) -> String {
    let mut sc = Scenario::generate(seed, true);
    sc.lp_jobs = jobs;
    let buf = SharedBuf::default();
    let tracer = Tracer::jsonl_writer(Box::new(buf.clone()), TraceConfig::all());
    let run = run_scenario_traced(&sc, tracer);
    assert!(run.terminated > 0, "lp scenario must produce outcomes");
    digest(
        &buf.take(),
        &[
            ("counters", &run.counters),
            ("fcts", &run.fcts.join("\n")),
            ("sim_end", &run.sim_end.to_string()),
        ],
    )
}

/// Run every cell, returning `(name, digest)` pairs in a stable order.
fn all_cells() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for scheme_idx in 0..4u8 {
        for (n_intra, n_inter) in [(4usize, 0usize), (2, 2)] {
            for seed in [1u64, 2] {
                let name = format!(
                    "fig08/{}/{n_intra}x{n_inter}/seed{seed}",
                    SCHEME_NAMES[scheme_idx as usize]
                );
                out.push((name, fig08_cell(scheme_idx, n_intra, n_inter, seed)));
            }
        }
    }
    for seed in [1u64, 2] {
        out.push((format!("telemetry/uno/seed{seed}"), telemetry_cell(seed)));
    }
    out.push((
        "scenario/calendar_overflow_flap_completes".to_string(),
        calendar_stress_cell(),
    ));
    for seed in [3u64, 17, 29] {
        out.push((format!("lossless/seed{seed}"), lossless_cell(seed)));
    }
    // Committed at lp_jobs = 1; worker-count independence makes the same
    // digest the golden for every other worker count.
    for seed in [5u64, 11] {
        out.push((format!("lp/seed{seed}"), lp_cell(seed, 1)));
    }
    out
}

fn write_goldens(cells: &[(String, String)]) {
    let path = golden_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let v = Value::Object(
        cells
            .iter()
            .map(|(k, d)| (k.clone(), Value::Str(d.clone())))
            .collect(),
    );
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "{}", serde_json::to_string_pretty(&v).unwrap()).unwrap();
    eprintln!("wrote {} digests to {}", cells.len(), path.display());
}

#[test]
fn traces_match_committed_golden_digests() {
    let cells = all_cells();
    if std::env::var_os("UNO_UPDATE_GOLDEN").is_some() {
        write_goldens(&cells);
        return;
    }
    let path = golden_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with UNO_UPDATE_GOLDEN=1 to generate",
            path.display()
        )
    });
    let golden = serde_json::parse_value(&text).expect("golden file parses");
    let golden = golden.as_object().expect("golden file is an object");
    // Every committed digest must be reproduced, and no cell may be
    // missing from the committed set: drift in either direction fails.
    let mut mismatches = Vec::new();
    for (name, got) in &cells {
        match golden
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_str())
        {
            Some(want) if want == got => {}
            Some(want) => mismatches.push(format!("{name}: digest {got} != committed {want}")),
            None => mismatches.push(format!("{name}: no committed digest")),
        }
    }
    for (k, _) in golden.iter() {
        if !cells.iter().any(|(name, _)| name == k) {
            mismatches.push(format!("{k}: committed digest has no cell"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} golden-trace mismatch(es) — the simulation is no longer \
         byte-identical to the engine that generated the goldens:\n  {}\n\
         If the change is intentional, regenerate with UNO_UPDATE_GOLDEN=1 \
         and explain the behaviour change in the commit.",
        mismatches.len(),
        mismatches.join("\n  ")
    );
}

/// The digest helper itself must be stable: two runs of the same seed in
/// the same process must agree (catches accidental global state).
#[test]
fn cells_are_deterministic_within_a_process() {
    let a = fig08_cell(0, 2, 2, 7);
    let b = fig08_cell(0, 2, 2, 7);
    assert_eq!(a, b);
}

/// The parallel engine's worker-count-independence contract at full trace
/// granularity: one worker and four workers must produce byte-identical
/// traces, counters, FCT tables, and end times. This is what lets the
/// `lp/*` goldens be committed once (at `lp_jobs = 1`) yet hold for any
/// `--lp-jobs` value.
#[test]
fn lp_digests_are_worker_count_independent() {
    for seed in [5u64, 11] {
        assert_eq!(lp_cell(seed, 1), lp_cell(seed, 4), "seed {seed}");
    }
}
