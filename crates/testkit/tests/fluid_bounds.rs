//! Fluid-model throughput oracle against real packet-level runs.
//!
//! Steady-state fluid theory bounds aggregate goodput by the bottleneck
//! line rate, and a sane congestion controller should not leave a
//! persistently-backlogged bottleneck mostly idle. Both sides are checked
//! for every scheme; the floors are deliberately loose (they flag gross
//! regressions — a stalled controller or a double-counting bug — not
//! small efficiency shifts).

use uno::SchemeSpec;
use uno_testkit::incast_check;

const MIB: u64 = 1 << 20;

fn schemes() -> [(&'static str, SchemeSpec); 4] {
    [
        ("uno", SchemeSpec::uno()),
        ("uno_ecmp", SchemeSpec::uno_ecmp()),
        ("gemini", SchemeSpec::gemini()),
        ("mprdma_bbr", SchemeSpec::mprdma_bbr()),
    ]
}

#[test]
fn intra_incast_within_fluid_bound() {
    for (name, scheme) in schemes() {
        let c = incast_check(scheme, 4, 2 * MIB, false, 7);
        assert!(c.completed, "{name}: intra incast did not complete");
        // Goodput can never exceed the line rate. A tiny tolerance covers
        // the makespan measuring first-start to last-delivery rather than
        // the fluid model's open interval.
        assert!(
            c.utilization <= 1.02,
            "{name}: intra utilization {:.3} exceeds the fluid bound",
            c.utilization
        );
        // Measured utilizations are 0.63–0.99 across schemes; anything
        // under the floor means the controller is stalling on a
        // persistently-backlogged bottleneck.
        assert!(
            c.utilization > 0.4,
            "{name}: intra utilization {:.3} below the efficiency floor",
            c.utilization
        );
    }
}

#[test]
fn inter_incast_within_fluid_bound() {
    for (name, scheme) in schemes() {
        let c = incast_check(scheme, 4, 8 * MIB, true, 7);
        assert!(c.completed, "{name}: inter incast did not complete");
        // The inter path's bottleneck is still bounded by one line rate;
        // WAN latency and ramp-up keep achieved utilization far below it,
        // so only the upper bound is meaningful here.
        assert!(
            c.utilization <= 1.02,
            "{name}: inter utilization {:.3} exceeds the fluid bound",
            c.utilization
        );
    }
}

#[test]
fn single_inter_flow_reaches_steady_state() {
    // One long inter flow should settle near its fair rate. Gemini's
    // delay-gated WAN ramp is much slower than the others (measured ~0.13
    // at this size), so it gets the looser floor rather than being skipped.
    for (name, scheme) in schemes() {
        let floor = if name == "gemini" { 0.05 } else { 0.3 };
        let c = incast_check(scheme, 1, 32 * MIB, true, 3);
        assert!(c.completed, "{name}: single inter flow did not complete");
        assert!(
            c.utilization <= 1.02,
            "{name}: single-flow utilization {:.3} exceeds the fluid bound",
            c.utilization
        );
        assert!(
            c.utilization > floor,
            "{name}: single-flow utilization {:.3} below floor {floor}",
            c.utilization
        );
    }
}
