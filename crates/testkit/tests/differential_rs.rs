//! Differential oracle: the optimised `uno-erasure` codec against the
//! naive O(n·k) Reed–Solomon reference. Any single-byte disagreement on
//! encode or decode across geometries and erasure patterns is a failure in
//! one of the two implementations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uno_erasure::ReedSolomon;
use uno_testkit::NaiveReedSolomon;

const GEOMETRIES: [(usize, usize); 7] = [(1, 1), (1, 2), (2, 1), (2, 2), (3, 4), (8, 2), (10, 4)];

fn random_shards(rng: &mut SmallRng, x: usize, len: usize) -> Vec<Vec<u8>> {
    (0..x)
        .map(|_| (0..len).map(|_| rng.gen_range(0..256usize) as u8).collect())
        .collect()
}

#[test]
fn encoders_agree_byte_for_byte() {
    let mut rng = SmallRng::seed_from_u64(0xEC);
    for &(x, y) in &GEOMETRIES {
        for len in [1usize, 16, 257] {
            let data = random_shards(&mut rng, x, len);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let fast = ReedSolomon::new(x, y).encode(&refs).unwrap();
            let slow = NaiveReedSolomon::new(x, y).encode(&data);
            assert_eq!(fast, slow, "parity mismatch at ({x},{y}) len {len}");
        }
    }
}

#[test]
fn decoders_agree_on_every_loss_pattern() {
    let mut rng = SmallRng::seed_from_u64(0xDEC0DE);
    for &(x, y) in &GEOMETRIES {
        let n = x + y;
        let data = random_shards(&mut rng, x, 24);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = ReedSolomon::new(x, y).encode(&refs).unwrap();
        let all: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();

        // Exhaustive single and double erasures (every legal pattern for
        // the paper geometry), plus a handful of random y-sized erasures.
        let mut patterns: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        if y >= 2 {
            for i in 0..n {
                for j in i + 1..n {
                    patterns.push(vec![i, j]);
                }
            }
        }
        for _ in 0..8 {
            let mut p: Vec<usize> = Vec::new();
            while p.len() < y {
                let c = rng.gen_range(0..n);
                if !p.contains(&c) {
                    p.push(c);
                }
            }
            patterns.push(p);
        }

        for lost in patterns {
            if lost.len() > y {
                continue;
            }
            // Optimised codec path.
            let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
            for &i in &lost {
                shards[i] = None;
            }
            ReedSolomon::new(x, y)
                .reconstruct(&mut shards)
                .unwrap_or_else(|e| panic!("({x},{y}) lost {lost:?}: {e}"));
            let fast: Vec<Vec<u8>> = shards.into_iter().map(Option::unwrap).collect();

            // Naive oracle from the same survivor set.
            let survivors: Vec<(usize, Vec<u8>)> = (0..n)
                .filter(|i| !lost.contains(i))
                .map(|i| (i, all[i].clone()))
                .collect();
            let slow = NaiveReedSolomon::new(x, y).recover(&survivors).unwrap();

            assert_eq!(fast, slow, "({x},{y}) lost {lost:?}");
            assert_eq!(fast, all, "({x},{y}) lost {lost:?}: wrong reconstruction");
        }
    }
}

// --------------------------------------------------------------------------
// Property grid: the batch (split-nibble / pooled / matrix-cached) codec
// paths against the naive oracle over the geometry × shard-length ×
// erasure-pattern cube. Everything is seeded and deterministic.
// --------------------------------------------------------------------------

/// The grid geometries from ROADMAP item 3: paper default, its neighbours,
/// and two wide codes that stress >16-survivor decode matrices.
const GRID_GEOMETRIES: [(usize, usize); 5] = [(4, 2), (8, 2), (8, 4), (16, 4), (32, 8)];

/// Shard lengths: a single byte (pure tail path), one SIMD lane (64), an
/// MTU-ish 1500, and odd lengths that never align to a vector width.
const GRID_LENS: [usize; 4] = [1, 64, 1500, 333];

/// Erasure patterns of size `1..=y`: exhaustive when the total count fits
/// `cap`, otherwise all singles plus seeded-random distinct patterns (biased
/// to include the extreme all-data and all-parity losses) up to `cap`.
fn grid_patterns(n: usize, y: usize, cap: usize, rng: &mut SmallRng) -> Vec<Vec<usize>> {
    fn extend_exhaustive(base: &mut Vec<Vec<usize>>, n: usize, size: usize) {
        let mut idx: Vec<usize> = (0..size).collect();
        loop {
            base.push(idx.clone());
            // Next combination in lexicographic order.
            let mut i = size;
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                if idx[i] != i + n - size {
                    break;
                }
                if i == 0 {
                    return;
                }
            }
            idx[i] += 1;
            for j in i + 1..size {
                idx[j] = idx[j - 1] + 1;
            }
        }
    }
    fn count_exhaustive(n: usize, y: usize) -> usize {
        let mut total = 0usize;
        for size in 1..=y {
            let mut c = 1usize;
            for k in 0..size {
                c = c * (n - k) / (k + 1);
            }
            total += c;
        }
        total
    }
    let mut patterns: Vec<Vec<usize>> = Vec::new();
    if count_exhaustive(n, y) <= cap {
        for size in 1..=y {
            extend_exhaustive(&mut patterns, n, size);
        }
        return patterns;
    }
    // Sampled regime: all singles, the two extremes, then random fill.
    patterns.extend((0..n).map(|i| vec![i]));
    patterns.push((0..y).collect()); // first y data shards
    patterns.push((n - y..n).collect()); // all parity shards
    let mut seen: std::collections::HashSet<Vec<usize>> = patterns.iter().cloned().collect();
    while patterns.len() < cap {
        let size = rng.gen_range(2..=y);
        let mut p: Vec<usize> = Vec::new();
        while p.len() < size {
            let c = rng.gen_range(0..n);
            if !p.contains(&c) {
                p.push(c);
            }
        }
        p.sort_unstable();
        if seen.insert(p.clone()) {
            patterns.push(p);
        }
    }
    patterns
}

#[test]
fn property_grid_encoders_agree() {
    let mut rng = SmallRng::seed_from_u64(0x6121D);
    for &(x, y) in &GRID_GEOMETRIES {
        let rs = ReedSolomon::new(x, y);
        let naive = NaiveReedSolomon::new(x, y);
        for &len in &GRID_LENS {
            let data = random_shards(&mut rng, x, len);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let fast = rs.encode(&refs).unwrap();
            let slow = naive.encode(&data);
            assert_eq!(fast, slow, "parity mismatch at ({x},{y}) len {len}");
            // The pooled encode path must be byte-identical too.
            let mut pool = uno_erasure::ShardPool::new();
            let mut pooled: Vec<Vec<u8>> = (0..y).map(|_| pool.take(len)).collect();
            rs.encode_into(&refs, &mut pooled).unwrap();
            assert_eq!(
                pooled, slow,
                "pooled parity mismatch at ({x},{y}) len {len}"
            );
        }
    }
}

#[test]
fn property_grid_decoders_agree() {
    let mut rng = SmallRng::seed_from_u64(0xDEC0DE2);
    for &(x, y) in &GRID_GEOMETRIES {
        let n = x + y;
        // One codec instance per geometry: re-decoding the same pattern at
        // a different shard length exercises the decoding-matrix cache path
        // (first len is the miss, later lens are hits).
        let rs = ReedSolomon::new(x, y);
        let naive = NaiveReedSolomon::new(x, y);
        let mut scratch = uno_erasure::CodecScratch::new();
        let mut pool = uno_erasure::ShardPool::new();
        // Keep the debug-profile oracle cost bounded: the wide geometries
        // get a seeded sample on top of exhaustive singles + extremes, and
        // only the len-64 column runs the full pattern set — the other
        // shard lengths take every 8th pattern (which still re-decodes
        // those patterns at a second length, i.e. through the matrix cache).
        let cap = if n <= 12 { 128 } else { 32 };
        let patterns = grid_patterns(n, y, cap, &mut rng);
        let per_len: Vec<Vec<Vec<u8>>> = GRID_LENS
            .iter()
            .map(|&len| {
                let data = random_shards(&mut rng, x, len);
                let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
                let parity = rs.encode(&refs).unwrap();
                data.into_iter().chain(parity).collect()
            })
            .collect();
        for (li, all) in per_len.iter().enumerate() {
            let step = if GRID_LENS[li] == 64 { 1 } else { 8 };
            for (pi, lost) in patterns.iter().enumerate().step_by(step) {
                let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
                for &i in lost {
                    shards[i] = None;
                }
                rs.reconstruct_with(&mut shards, &mut scratch, &mut pool)
                    .unwrap_or_else(|e| panic!("({x},{y}) lost {lost:?}: {e}"));
                let fast: Vec<Vec<u8>> = shards.into_iter().map(Option::unwrap).collect();

                // Every reconstruction is pinned to the known-good block;
                // the naive oracle (whose per-byte exhaustive-search field
                // ops make wide codes expensive under the debug profile)
                // additionally cross-checks everything for small codes and
                // a len-64 pattern sample for the wide ones.
                assert_eq!(fast, *all, "({x},{y}) lost {lost:?}: wrong reconstruction");
                if n <= 10 || (GRID_LENS[li] == 64 && pi % 4 == 0) {
                    let survivors: Vec<(usize, Vec<u8>)> = (0..n)
                        .filter(|i| !lost.contains(i))
                        .map(|i| (i, all[i].clone()))
                        .collect();
                    let slow = naive.recover(&survivors).unwrap();
                    assert_eq!(fast, slow, "({x},{y}) lost {lost:?}");
                }
                for s in fast {
                    pool.put(s);
                }
            }
        }
        // Each distinct survivor set inverted exactly once despite
        // patterns × lens reconstructions.
        assert!(rs.cached_inversions() <= patterns.len());
        assert!(rs.cached_inversions() > 0);
    }
}

#[test]
fn property_grid_indexed_agrees() {
    let mut rng = SmallRng::seed_from_u64(0x1D37);
    for &(x, y) in &GRID_GEOMETRIES {
        let n = x + y;
        let rs = ReedSolomon::new(x, y);
        let naive = NaiveReedSolomon::new(x, y);
        let data = random_shards(&mut rng, x, 97);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        let all: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
        for _ in 0..6 {
            // Random survivor set of random sufficient size, in random
            // wire-arrival order.
            let keep = rng.gen_range(x..=n);
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let wire: Vec<(usize, Vec<u8>)> = order
                .iter()
                .take(keep)
                .map(|&i| (i, all[i].clone()))
                .collect();
            let fast = rs.reconstruct_indexed(&wire).unwrap();
            let slow = naive.recover(&wire).unwrap();
            assert_eq!(fast, slow, "({x},{y}) wire {:?}", &order[..keep]);
            assert_eq!(fast, all, "({x},{y}) wire {:?}", &order[..keep]);
        }
    }
}

#[test]
fn indexed_reconstruction_agrees_with_oracle() {
    let mut rng = SmallRng::seed_from_u64(7);
    let (x, y) = (8usize, 2usize);
    let rs = ReedSolomon::new(x, y);
    let data = random_shards(&mut rng, x, 64);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = rs.encode(&refs).unwrap();
    let all: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();

    // Arbitrary wire arrival order with the two data losses 3 and 6.
    let order = [9usize, 0, 8, 1, 2, 4, 5, 7];
    let wire: Vec<(usize, Vec<u8>)> = order.iter().map(|&i| (i, all[i].clone())).collect();
    let fast = rs.reconstruct_indexed(&wire).unwrap();
    let slow = NaiveReedSolomon::new(x, y).recover(&wire).unwrap();
    assert_eq!(fast, slow);
    assert_eq!(fast, all);
}
