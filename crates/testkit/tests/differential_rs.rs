//! Differential oracle: the optimised `uno-erasure` codec against the
//! naive O(n·k) Reed–Solomon reference. Any single-byte disagreement on
//! encode or decode across geometries and erasure patterns is a failure in
//! one of the two implementations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uno_erasure::ReedSolomon;
use uno_testkit::NaiveReedSolomon;

const GEOMETRIES: [(usize, usize); 7] = [(1, 1), (1, 2), (2, 1), (2, 2), (3, 4), (8, 2), (10, 4)];

fn random_shards(rng: &mut SmallRng, x: usize, len: usize) -> Vec<Vec<u8>> {
    (0..x)
        .map(|_| (0..len).map(|_| rng.gen_range(0..256usize) as u8).collect())
        .collect()
}

#[test]
fn encoders_agree_byte_for_byte() {
    let mut rng = SmallRng::seed_from_u64(0xEC);
    for &(x, y) in &GEOMETRIES {
        for len in [1usize, 16, 257] {
            let data = random_shards(&mut rng, x, len);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let fast = ReedSolomon::new(x, y).encode(&refs).unwrap();
            let slow = NaiveReedSolomon::new(x, y).encode(&data);
            assert_eq!(fast, slow, "parity mismatch at ({x},{y}) len {len}");
        }
    }
}

#[test]
fn decoders_agree_on_every_loss_pattern() {
    let mut rng = SmallRng::seed_from_u64(0xDEC0DE);
    for &(x, y) in &GEOMETRIES {
        let n = x + y;
        let data = random_shards(&mut rng, x, 24);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = ReedSolomon::new(x, y).encode(&refs).unwrap();
        let all: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();

        // Exhaustive single and double erasures (every legal pattern for
        // the paper geometry), plus a handful of random y-sized erasures.
        let mut patterns: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        if y >= 2 {
            for i in 0..n {
                for j in i + 1..n {
                    patterns.push(vec![i, j]);
                }
            }
        }
        for _ in 0..8 {
            let mut p: Vec<usize> = Vec::new();
            while p.len() < y {
                let c = rng.gen_range(0..n);
                if !p.contains(&c) {
                    p.push(c);
                }
            }
            patterns.push(p);
        }

        for lost in patterns {
            if lost.len() > y {
                continue;
            }
            // Optimised codec path.
            let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
            for &i in &lost {
                shards[i] = None;
            }
            ReedSolomon::new(x, y)
                .reconstruct(&mut shards)
                .unwrap_or_else(|e| panic!("({x},{y}) lost {lost:?}: {e}"));
            let fast: Vec<Vec<u8>> = shards.into_iter().map(Option::unwrap).collect();

            // Naive oracle from the same survivor set.
            let survivors: Vec<(usize, Vec<u8>)> = (0..n)
                .filter(|i| !lost.contains(i))
                .map(|i| (i, all[i].clone()))
                .collect();
            let slow = NaiveReedSolomon::new(x, y).recover(&survivors).unwrap();

            assert_eq!(fast, slow, "({x},{y}) lost {lost:?}");
            assert_eq!(fast, all, "({x},{y}) lost {lost:?}: wrong reconstruction");
        }
    }
}

#[test]
fn indexed_reconstruction_agrees_with_oracle() {
    let mut rng = SmallRng::seed_from_u64(7);
    let (x, y) = (8usize, 2usize);
    let rs = ReedSolomon::new(x, y);
    let data = random_shards(&mut rng, x, 64);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = rs.encode(&refs).unwrap();
    let all: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();

    // Arbitrary wire arrival order with the two data losses 3 and 6.
    let order = [9usize, 0, 8, 1, 2, 4, 5, 7];
    let wire: Vec<(usize, Vec<u8>)> = order.iter().map(|&i| (i, all[i].clone())).collect();
    let fast = rs.reconstruct_indexed(&wire).unwrap();
    let slow = NaiveReedSolomon::new(x, y).recover(&wire).unwrap();
    assert_eq!(fast, slow);
    assert_eq!(fast, all);
}
