//! End-to-end proof that the harness catches a real protocol bug: with the
//! test-only block-accounting off-by-one armed in the transport, the
//! completion-soundness invariant must fire, and the shrinker must reduce
//! the case to a minimal reproducer.

use uno_sim::MILLIS;
use uno_testkit::{repro_hash, run_scenario, shrink, FlowDesc, Scenario};

/// An inter-DC EC flow under the `uno` scheme (the only scheme with
/// `ec_inter` armed) — exactly the situation the off-by-one corrupts.
fn bug_scenario() -> Scenario {
    Scenario {
        seed: 1,
        scheme: 0, // uno
        queue_kib: 1024,
        flows: vec![FlowDesc {
            src_dc: 0,
            src_idx: 0,
            dst_dc: 1,
            dst_idx: 0,
            size: 16 * 4096, // two (8,2) blocks
            start: 0,
        }],
        faults: vec![],
        horizon: 10_000 * MILLIS,
        inject_block_bug: true,
        lossless: false,
        pfc_xoff_permille: 0,
        lp_jobs: 0,
    }
}

#[test]
fn injected_block_bug_is_caught() {
    let out = run_scenario(&bug_scenario());
    assert!(out.failed(), "armed off-by-one escaped every invariant");
    assert!(
        out.violations
            .iter()
            .any(|v| v.invariant == "completion-soundness"),
        "expected a completion-soundness violation, got: {:?}",
        out.violations
    );
}

#[test]
fn same_scenario_is_clean_without_the_bug() {
    let mut sc = bug_scenario();
    sc.inject_block_bug = false;
    let out = run_scenario(&sc);
    assert!(
        !out.failed(),
        "scenario should be clean without the injected bug: {:?}",
        out.violations
    );
}

#[test]
fn shrinker_reduces_to_minimal_reproducer() {
    // Start from a noisier case: the bug flow plus bystander flows and an
    // irrelevant fault, all of which the shrinker should strip.
    let mut sc = bug_scenario();
    sc.flows.push(FlowDesc {
        src_dc: 0,
        src_idx: 2,
        dst_dc: 0,
        dst_idx: 3,
        size: 64 * 4096,
        start: 0,
    });
    sc.flows.push(FlowDesc {
        src_dc: 1,
        src_idx: 5,
        dst_dc: 1,
        dst_idx: 6,
        size: 32 * 4096,
        start: MILLIS,
    });
    sc.faults.push(uno_testkit::Fault::Loss {
        link: 3,
        permille: 5,
        from: 0,
        until: 2 * MILLIS,
    });
    assert!(run_scenario(&sc).failed());

    let r = shrink(&sc, 300);
    assert!(
        run_scenario(&r.scenario).failed(),
        "shrunk case must still fail"
    );
    assert_eq!(r.scenario.flows.len(), 1, "bystander flows not removed");
    assert!(r.scenario.faults.is_empty(), "irrelevant fault not removed");
    // The off-by-one needs a block with >= 2 data packets, so the minimal
    // message is two packets (8 KiB); shrinking halves sizes toward that.
    assert!(
        r.scenario.flows[0].size <= 16 * 4096,
        "size not shrunk: {}",
        r.scenario.flows[0].size
    );
    assert!(r.scenario.flows[0].size >= 2 * 4096);

    // The reproducer round-trips losslessly through its JSON form.
    let back = Scenario::from_json(&r.scenario.to_json_pretty()).unwrap();
    assert_eq!(back, r.scenario);
    assert_eq!(repro_hash(&back), repro_hash(&r.scenario));
}
