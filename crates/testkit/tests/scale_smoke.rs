//! Scale smoke test: a 4-site, k=16 fabric (4096 hosts) running a mixed
//! intra/inter incast with telemetry sampling and the full invariant suite
//! armed. Guards the struct-of-arrays engine tables at a host count two
//! orders of magnitude above the unit-test topologies: the run must finish
//! inside a generous wall-clock budget, every flow must reach a definite
//! outcome, and no protocol invariant may fire.

use uno::{CcKind, Experiment, ExperimentConfig, SchemeSpec};
use uno_sim::{SampleConfig, TopologyParams, MICROS, MILLIS, SECONDS};
use uno_testkit::{ArmedChecker, FlowNetInfo, NetSpec};
use uno_workloads::FlowSpec;

/// Wall-clock ceiling for the whole run (debug builds on a loaded CI host;
/// release finishes in well under a second).
const BUDGET_SECS: u64 = 180;

#[test]
fn incast_4k_hosts_with_telemetry_and_invariants() {
    let started = std::time::Instant::now();

    let topo = TopologyParams::multi_dc(4, 16, 8);
    assert_eq!(topo.hosts_per_dc() * topo.dcs, 4096);
    let scheme = SchemeSpec::uno();
    let mut cfg = ExperimentConfig::quick(scheme.clone(), 42);
    cfg.topo = topo;
    cfg.telemetry = Some(SampleConfig::every(50 * MICROS));
    let mut exp = Experiment::new(cfg);

    // Incast into DC0 host 0: 24 intra senders spread across the fabric
    // plus 4 inter senders from each remote site.
    let per_dc = exp.sim.topo.params.hosts_per_dc() as u32;
    let mut specs: Vec<FlowSpec> = Vec::new();
    for i in 0..24u32 {
        specs.push(FlowSpec {
            src_dc: 0,
            src_idx: 1 + i * (per_dc - 2) / 24,
            dst_dc: 0,
            dst_idx: 0,
            size: 256 << 10,
            start: 0,
        });
    }
    for dc in 1..4u8 {
        for i in 0..4u32 {
            specs.push(FlowSpec {
                src_dc: dc,
                src_idx: i * per_dc / 4,
                dst_dc: 0,
                dst_idx: 0,
                size: 256 << 10,
                start: 0,
            });
        }
    }

    // Arm the standard invariant suite against the realised topology.
    let net_spec = {
        let topo = &exp.sim.topo;
        let queue_capacity: Vec<u64> = topo
            .links
            .ids()
            .map(|l| topo.links.queue(l).capacity)
            .collect();
        let flows = specs
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let src = topo.host(f.src_dc, f.src_idx);
                let dst = topo.host(f.dst_dc, f.dst_idx);
                let inter = f.src_dc != f.dst_dc;
                let base_rtt = topo.base_rtt(src, dst);
                let d_intra = (topo.params.intra_rtt / 12).max(1);
                let rtt_floor = if inter {
                    base_rtt
                } else {
                    2 * topo.path_hops(src, dst) as u64 * d_intra
                };
                let mtu = topo.params.mtu;
                let bdp = topo.params.link_bps as f64 / 8.0 * (base_rtt as f64 / 1e9);
                let bbr = inter && matches!(scheme.cc, CcKind::MprdmaBbr);
                let cwnd_max = if bbr {
                    8.0 * bdp + 64.0 * mtu as f64
                } else {
                    2.0 * bdp + 16.0 * mtu as f64
                };
                FlowNetInfo {
                    id: i as u32,
                    size: f.size,
                    mtu,
                    ec: scheme
                        .ec_for(inter)
                        .map(|p| (p.data as u32, p.parity as u32)),
                    rtt_floor,
                    cwnd_max,
                }
            })
            .collect();
        NetSpec {
            queue_capacity,
            flows,
            liveness_grace: SECONDS / 2,
            max_nacks_per_block: 8,
            require_outcome: false,
            stall_horizon: 3 * SECONDS,
            pfc_storm_window: 10 * MILLIS,
            pfc_storm_duty: 0.9,
            pause_grace: SECONDS,
        }
    };
    let armed = ArmedChecker::new(net_spec);
    exp.sim.set_tracer(armed.tracer());

    let n = specs.len();
    exp.add_specs(&specs);
    let r = exp.run(2 * SECONDS);

    // Definite outcomes for all flows — nothing censored at the horizon.
    assert_eq!(r.flows, n);
    assert_eq!(r.fcts.len(), n, "all {n} incast flows must complete");
    assert!(r.failures.is_empty());
    assert!(r.censored.is_empty());
    assert!(r.sim_time < 2 * SECONDS, "ended early, not at the horizon");

    // Telemetry was on and saw the incast bottleneck.
    let telemetry = r.telemetry.expect("telemetry enabled");
    let links = telemetry.get("links").and_then(|l| l.as_object()).unwrap();
    assert!(
        !links.is_empty(),
        "the bottleneck queue must have produced at least one link series"
    );
    let ticks = telemetry.get("ticks").and_then(|t| t.as_f64()).unwrap();
    assert!(ticks > 0.0);

    // The full invariant suite stayed quiet.
    let report = armed.finish(r.sim_time);
    assert!(
        !report.failed(),
        "invariant violations at 4k hosts: {:?}",
        report.violations.first()
    );
    assert!(report.events_seen > 0, "tracer saw no events");

    let elapsed = started.elapsed().as_secs();
    assert!(
        elapsed < BUDGET_SECS,
        "scale smoke took {elapsed}s (budget {BUDGET_SECS}s)"
    );
}
