//! Replay the committed regression corpus. Every file under
//! `crates/testkit/regressions/` is a reproducer in the format `uno-fuzz`
//! writes for shrunken failures, and each must run clean. Files named
//! `erasure_*.json` are codec differential cases (replayed through every
//! production erasure path against the naive oracle); everything else is a
//! full-stack scenario run with the complete invariant suite armed. When a
//! fuzz failure is fixed, its reproducer moves here so the fix can never
//! silently regress.

use uno_testkit::{run_erasure_case, run_scenario, ErasureCase, Scenario};

#[test]
fn regression_corpus_is_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("regressions");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("regressions/ directory must exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "regression corpus is empty");

    let mut scenarios = 0usize;
    let mut erasure_cases = 0usize;
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        if name.starts_with("erasure_") {
            let case = ErasureCase::from_json(&text)
                .unwrap_or_else(|e| panic!("{name}: failed to parse: {e}"));
            if let Some(why) = run_erasure_case(&case) {
                panic!("{name}: codec/oracle mismatch: {why}");
            }
            erasure_cases += 1;
        } else {
            let sc = Scenario::from_json(&text)
                .unwrap_or_else(|e| panic!("{name}: failed to parse: {e}"));
            let out = run_scenario(&sc);
            assert!(
                !out.failed(),
                "{name}: {} violation(s), first: {:?}",
                out.violations.len(),
                out.violations.first()
            );
            scenarios += 1;
        }
    }
    assert!(scenarios > 0, "corpus must keep full-stack scenarios");
    assert!(erasure_cases > 0, "corpus must keep erasure cases");
}
