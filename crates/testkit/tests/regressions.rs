//! Replay the committed regression corpus. Every file under
//! `crates/testkit/regressions/` is a scenario JSON (the same format
//! `uno-fuzz` writes for shrunken reproducers); each must run clean with
//! the full invariant suite armed. When a fuzz failure is fixed, its
//! reproducer moves here so the fix can never silently regress.

use uno_testkit::{run_scenario, Scenario};

#[test]
fn regression_corpus_is_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("regressions");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("regressions/ directory must exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "regression corpus is empty");

    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let sc =
            Scenario::from_json(&text).unwrap_or_else(|e| panic!("{name}: failed to parse: {e}"));
        let out = run_scenario(&sc);
        assert!(
            !out.failed(),
            "{name}: {} violation(s), first: {:?}",
            out.violations.len(),
            out.violations.first()
        );
    }
}
