//! Minimal aligned text tables for the experiment harness output.

/// A simple text table with a header row and aligned columns.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let r: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(r.len(), self.header.len(), "row width mismatch");
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>width$}", c, width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["scheme", "p99 (ms)"]);
        t.row(["Uno", "1.2"]).row(["Gemini", "3.40"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("scheme"));
        assert!(lines[2].ends_with("1.2"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }
}
