//! Flow-completion-time statistics, the paper's primary evaluation metric
//! (§5.1: "mean and tail (99th percentile) FCT").

use serde::{Deserialize, Serialize};
use uno_sim::{FailRecord, FctRecord, FlowClass, FlowOutcome, StallCause, Time};

use crate::stats::{mean, percentile_of_sorted};

/// Definite-outcome accounting for a run. Under fault injection, flows can
/// terminate without completing (stalled by the watchdog, aborted by the
/// bounded-retry logic) or survive to the horizon with no verdict at all
/// (censored). Reporting these counts next to FCT summaries keeps
/// gray-failure results honest: a scheme that "wins" on mean FCT while
/// abandoning half its flows is not winning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Flows that finished successfully.
    pub completed: usize,
    /// Flows the stall watchdog terminated (any cause).
    pub stalled: usize,
    /// Subset of `stalled` the watchdog attributed to PFC backpressure
    /// (source NIC uplink paused at declaration time) — only ever non-zero
    /// on a lossless fabric.
    #[serde(default)]
    pub pfc_stalled: usize,
    /// Flows the bounded-retry logic aborted.
    pub aborted: usize,
    /// Flows still running at the horizon (no definite outcome).
    pub censored: usize,
}

impl OutcomeCounts {
    /// Tally a run's completion, failure, and censored records.
    pub fn tally(fcts: &[FctRecord], failures: &[FailRecord], censored: &[FctRecord]) -> Self {
        OutcomeCounts {
            completed: fcts.len(),
            stalled: failures.iter().filter(|f| f.outcome.is_stalled()).count(),
            pfc_stalled: failures
                .iter()
                .filter(|f| {
                    matches!(
                        f.outcome,
                        FlowOutcome::Stalled {
                            cause: StallCause::PfcBackpressure
                        }
                    )
                })
                .count(),
            aborted: failures
                .iter()
                .filter(|f| f.outcome == FlowOutcome::Aborted)
                .count(),
            censored: censored.len(),
        }
    }

    /// Total flows accounted for.
    pub fn total(&self) -> usize {
        self.completed + self.stalled + self.aborted + self.censored
    }

    /// True when every flow reached a definite outcome (nothing censored).
    pub fn all_terminated(&self) -> bool {
        self.censored == 0
    }
}

impl std::fmt::Display for OutcomeCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "completed={} stalled={} aborted={} censored={}",
            self.completed, self.stalled, self.aborted, self.censored
        )?;
        if self.pfc_stalled > 0 {
            write!(f, " (pfc_stalled={})", self.pfc_stalled)?;
        }
        Ok(())
    }
}

/// Summary of a set of FCTs, in seconds.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct FctSummary {
    /// Number of flows.
    pub n: usize,
    /// Mean FCT (s).
    pub mean_s: f64,
    /// Median FCT (s).
    pub p50_s: f64,
    /// 99th percentile FCT (s).
    pub p99_s: f64,
    /// 99.9th percentile FCT (s).
    pub p999_s: f64,
    /// Maximum FCT (s).
    pub max_s: f64,
}

impl FctSummary {
    /// Summarize FCTs given in seconds.
    pub fn of_secs(mut fcts: Vec<f64>) -> Self {
        if fcts.is_empty() {
            return FctSummary::default();
        }
        fcts.sort_by(|a, b| a.partial_cmp(b).expect("NaN FCT"));
        FctSummary {
            n: fcts.len(),
            mean_s: mean(&fcts),
            p50_s: percentile_of_sorted(&fcts, 0.50),
            p99_s: percentile_of_sorted(&fcts, 0.99),
            p999_s: percentile_of_sorted(&fcts, 0.999),
            max_s: *fcts.last().unwrap(),
        }
    }
}

impl std::fmt::Display for FctSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={:5} mean={:10.6}s p50={:10.6}s p99={:10.6}s max={:10.6}s",
            self.n, self.mean_s, self.p50_s, self.p99_s, self.max_s
        )
    }
}

/// FCT analysis over a run's completion records, with intra/inter splits and
/// slowdown computation.
#[derive(Clone, Debug, Default)]
pub struct FctTable {
    records: Vec<FctRecord>,
    /// Ideal (unloaded) FCT per record, used for slowdowns; filled by
    /// [`FctTable::with_ideal`].
    ideals: Vec<Time>,
}

impl FctTable {
    /// Build from a simulator's completion records.
    pub fn new(records: Vec<FctRecord>) -> Self {
        FctTable {
            records,
            ideals: Vec::new(),
        }
    }

    /// Attach ideal FCTs computed by `f(record) -> Time` for slowdowns.
    pub fn with_ideal<F: Fn(&FctRecord) -> Time>(mut self, f: F) -> Self {
        self.ideals = self.records.iter().map(f).collect();
        self
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are present.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records.
    pub fn records(&self) -> &[FctRecord] {
        &self.records
    }

    fn secs(&self, filter: Option<FlowClass>) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| filter.is_none_or(|c| r.class == c))
            .map(|r| uno_sim::time::as_secs_f64(r.fct()))
            .collect()
    }

    /// Summary over all flows.
    pub fn summary(&self) -> FctSummary {
        FctSummary::of_secs(self.secs(None))
    }

    /// Summary over one flow class.
    pub fn summary_class(&self, class: FlowClass) -> FctSummary {
        FctSummary::of_secs(self.secs(Some(class)))
    }

    /// FCT slowdowns (measured / ideal) for `class` (or all when `None`).
    /// Requires [`FctTable::with_ideal`]; panics otherwise.
    pub fn slowdowns(&self, class: Option<FlowClass>) -> Vec<f64> {
        assert_eq!(
            self.ideals.len(),
            self.records.len(),
            "call with_ideal before slowdowns"
        );
        self.records
            .iter()
            .zip(&self.ideals)
            .filter(|(r, _)| class.is_none_or(|c| r.class == c))
            .map(|(r, &ideal)| r.fct() as f64 / ideal.max(1) as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uno_sim::FlowId;

    fn rec(id: u32, fct_us: u64, class: FlowClass) -> FctRecord {
        FctRecord {
            flow: FlowId(id),
            size: 1 << 20,
            start: 0,
            end: fct_us * 1_000,
            class,
        }
    }

    #[test]
    fn summary_splits_by_class() {
        let t = FctTable::new(vec![
            rec(0, 100, FlowClass::Intra),
            rec(1, 200, FlowClass::Intra),
            rec(2, 4000, FlowClass::Inter),
        ]);
        let all = t.summary();
        assert_eq!(all.n, 3);
        let intra = t.summary_class(FlowClass::Intra);
        assert_eq!(intra.n, 2);
        assert!((intra.mean_s - 150e-6).abs() < 1e-12);
        let inter = t.summary_class(FlowClass::Inter);
        assert_eq!(inter.n, 1);
        assert!((inter.mean_s - 4e-3).abs() < 1e-12);
    }

    #[test]
    fn p99_is_tail() {
        let mut recs: Vec<FctRecord> = (0..95).map(|i| rec(i, 100, FlowClass::Intra)).collect();
        recs.extend((95..100).map(|i| rec(i, 10_000, FlowClass::Intra)));
        let s = FctTable::new(recs).summary();
        assert!(s.p99_s > 5e-3, "p99 must catch the straggler: {}", s.p99_s);
        assert!(s.p50_s < 2e-4);
    }

    #[test]
    fn slowdowns_against_ideal() {
        let t = FctTable::new(vec![rec(0, 100, FlowClass::Intra)])
            .with_ideal(|_| 50_000 /* 50us ideal */);
        let s = t.slowdowns(None);
        assert_eq!(s.len(), 1);
        assert!((s[0] - 2.0).abs() < 1e-9);
        assert!(t.slowdowns(Some(FlowClass::Inter)).is_empty());
    }

    #[test]
    fn empty_table() {
        let t = FctTable::new(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.summary().n, 0);
    }

    #[test]
    #[should_panic(expected = "call with_ideal")]
    fn slowdowns_without_ideal_panics() {
        let t = FctTable::new(vec![rec(0, 1, FlowClass::Intra)]);
        let _ = t.slowdowns(None);
    }

    #[test]
    fn outcome_counts_tally_and_display() {
        let fail = |id: u32, outcome| FailRecord {
            flow: FlowId(id),
            size: 1 << 20,
            start: 0,
            end: 1_000,
            class: FlowClass::Inter,
            outcome,
        };
        let c = OutcomeCounts::tally(
            &[rec(0, 100, FlowClass::Intra)],
            &[
                fail(
                    1,
                    FlowOutcome::Stalled {
                        cause: StallCause::Congestion,
                    },
                ),
                fail(2, FlowOutcome::Aborted),
                fail(
                    3,
                    FlowOutcome::Stalled {
                        cause: StallCause::PfcBackpressure,
                    },
                ),
            ],
            &[rec(4, 500, FlowClass::Inter)],
        );
        assert_eq!(
            c,
            OutcomeCounts {
                completed: 1,
                stalled: 2,
                pfc_stalled: 1,
                aborted: 1,
                censored: 1
            }
        );
        assert_eq!(c.total(), 5);
        assert!(!c.all_terminated());
        assert_eq!(
            c.to_string(),
            "completed=1 stalled=2 aborted=1 censored=1 (pfc_stalled=1)"
        );
        let done = OutcomeCounts { censored: 0, ..c };
        assert!(done.all_terminated());
    }
}
