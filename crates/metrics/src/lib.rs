//! # uno-metrics — measurement and statistics for the Uno reproduction
//!
//! Flow-completion-time statistics (mean / tail percentiles / slowdowns),
//! send-rate time series derived from progress records, violin-plot summary
//! statistics for multi-run experiments, and small text-table helpers used
//! by the experiment harness.

#![warn(missing_docs)]

pub mod fct;
pub mod series;
pub mod stats;
pub mod table;

pub use fct::{FctSummary, FctTable, OutcomeCounts};
pub use series::{jain_fairness, rates_from_progress, RatePoint, TimeSeriesStats};
pub use stats::{mean, percentile, percentile_of_sorted, ViolinSummary};
pub use table::TextTable;
