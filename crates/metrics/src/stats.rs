//! Basic statistics: mean, percentiles, violin summaries.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Percentile `q ∈ [0, 1]` with linear interpolation between order
/// statistics (sorts a copy). 0.0 for empty input.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_of_sorted(&v, q)
}

/// Percentile of an already-sorted slice.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Five-number summary plus mean, the statistics behind the paper's violin
/// plots (Fig. 13).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ViolinSummary {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// Third quartile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations.
    pub n: usize,
}

impl ViolinSummary {
    /// Summarize `xs` (empty input yields all zeros).
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return ViolinSummary::default();
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in violin input"));
        ViolinSummary {
            min: v[0],
            p25: percentile_of_sorted(&v, 0.25),
            p50: percentile_of_sorted(&v, 0.50),
            p75: percentile_of_sorted(&v, 0.75),
            max: *v.last().unwrap(),
            mean: mean(&v),
            n: v.len(),
        }
    }
}

impl std::fmt::Display for ViolinSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min={:.3} p25={:.3} p50={:.3} p75={:.3} max={:.3} mean={:.3} (n={})",
            self.min, self.p25, self.p50, self.p75, self.max, self.mean, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        // p99 of a uniform 0..=100 grid is ~99.
        let grid: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert!((percentile(&grid, 0.99) - 99.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_clamps_q() {
        let xs = [5.0, 6.0];
        assert_eq!(percentile(&xs, -0.5), 5.0);
        assert_eq!(percentile(&xs, 1.5), 6.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(percentile(&xs, 0.5), 5.0);
    }

    #[test]
    fn percentile_empty() {
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn violin_summary_values() {
        let xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let v = ViolinSummary::of(&xs);
        assert_eq!(v.min, 1.0);
        assert_eq!(v.p50, 5.0);
        assert_eq!(v.max, 9.0);
        assert_eq!(v.mean, 5.0);
        assert_eq!(v.n, 9);
        assert_eq!(v.p25, 3.0);
        assert_eq!(v.p75, 7.0);
    }

    #[test]
    fn violin_empty_is_zeroed() {
        let v = ViolinSummary::of(&[]);
        assert_eq!(v.n, 0);
        assert_eq!(v.max, 0.0);
    }
}
