//! Time-series utilities: deriving send-rate curves from cumulative progress
//! records (paper Figs. 3 and 8 plot per-flow sending rates over time) and
//! summarizing sampled queue occupancies (Fig. 4).

use serde::{Deserialize, Serialize};
use uno_sim::{Time, SECONDS};

/// One point of a rate curve.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RatePoint {
    /// Interval midpoint.
    pub time: Time,
    /// Goodput over the interval in bits/s.
    pub rate_bps: f64,
}

/// Convert a cumulative (time, acked-bytes) progress series into a rate
/// curve with fixed-width bins of `bin` nanoseconds over `[0, horizon)`.
pub fn rates_from_progress(progress: &[(Time, u64)], bin: Time, horizon: Time) -> Vec<RatePoint> {
    assert!(bin > 0);
    let nbins = horizon.div_ceil(bin) as usize;
    let mut out = Vec::with_capacity(nbins);
    let mut idx = 0usize;
    let mut last_bytes = 0u64;
    for b in 0..nbins {
        let end = (b as Time + 1) * bin;
        // Advance to the last record at or before `end`.
        let mut bytes_at_end = last_bytes;
        while idx < progress.len() && progress[idx].0 <= end {
            bytes_at_end = progress[idx].1;
            idx += 1;
        }
        let delta = bytes_at_end.saturating_sub(last_bytes);
        out.push(RatePoint {
            time: end - bin / 2,
            rate_bps: delta as f64 * 8.0 * (SECONDS as f64 / bin as f64),
        });
        last_bytes = bytes_at_end;
    }
    out
}

/// Summary statistics of a sampled (time, value) series.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TimeSeriesStats {
    /// Number of samples.
    pub n: usize,
    /// Mean value.
    pub mean: f64,
    /// Maximum value.
    pub max: f64,
    /// 99th percentile value.
    pub p99: f64,
}

impl TimeSeriesStats {
    /// Summarize the value column of a sampled series.
    pub fn of(series: &[(Time, u64)]) -> Self {
        if series.is_empty() {
            return TimeSeriesStats::default();
        }
        let vals: Vec<f64> = series.iter().map(|&(_, v)| v as f64).collect();
        TimeSeriesStats {
            n: vals.len(),
            mean: crate::stats::mean(&vals),
            max: vals.iter().fold(0.0f64, |a, &b| a.max(b)),
            p99: crate::stats::percentile(&vals, 0.99),
        }
    }

    /// Summarize a telemetry [`Series`] collected by the in-sim sampler
    /// (`--telemetry`). Compaction halves a series' resolution as it fills,
    /// so these are statistics *of the retained samples*: `max` is exact for
    /// any value that survived downsampling, `mean`/`p99` are over the kept
    /// points.
    ///
    /// [`Series`]: uno_sim::Series
    pub fn of_series(series: &uno_sim::Series) -> Self {
        Self::of(series.points())
    }
}

/// Jain's fairness index of a set of rates: `(Σx)² / (n·Σx²)`, 1.0 = fair.
pub fn jain_fairness(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sum_sq: f64 = rates.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        1.0
    } else {
        sum * sum / (rates.len() as f64 * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uno_sim::MILLIS;

    #[test]
    fn constant_rate_recovered() {
        // 1 MB/ms cumulative progress => 8 Gbps.
        let progress: Vec<(Time, u64)> = (1..=10).map(|i| (i * MILLIS, i * 1_000_000)).collect();
        let rates = rates_from_progress(&progress, MILLIS, 10 * MILLIS);
        assert_eq!(rates.len(), 10);
        for r in &rates {
            assert!((r.rate_bps - 8e9).abs() < 1e6, "{}", r.rate_bps);
        }
    }

    #[test]
    fn idle_bins_have_zero_rate() {
        let progress = vec![(MILLIS, 1000u64)];
        let rates = rates_from_progress(&progress, MILLIS, 3 * MILLIS);
        assert!(rates[0].rate_bps > 0.0);
        assert_eq!(rates[1].rate_bps, 0.0);
        assert_eq!(rates[2].rate_bps, 0.0);
    }

    #[test]
    fn empty_progress_is_all_zero() {
        let rates = rates_from_progress(&[], MILLIS, 2 * MILLIS);
        assert_eq!(rates.len(), 2);
        assert!(rates.iter().all(|r| r.rate_bps == 0.0));
    }

    #[test]
    fn series_stats() {
        let s: Vec<(Time, u64)> = vec![(0, 10), (1, 20), (2, 30)];
        let st = TimeSeriesStats::of(&s);
        assert_eq!(st.n, 3);
        assert_eq!(st.mean, 20.0);
        assert_eq!(st.max, 30.0);
    }

    #[test]
    fn telemetry_series_stats_match_raw_points() {
        let mut s = uno_sim::Series::new(1, 64);
        for t in 0..10u64 {
            s.push(t, (t + 1) * 10);
        }
        let st = TimeSeriesStats::of_series(&s);
        assert_eq!(st.n, 10);
        assert_eq!(st.max, 100.0);
        assert_eq!(st.mean, 55.0);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert!((jain_fairness(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One flow hogging: index -> 1/n.
        let j = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }
}
