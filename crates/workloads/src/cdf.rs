//! Empirical flow-size distributions.
//!
//! The paper drives its realistic experiments with three published flow-size
//! CDFs: Google web search (DCTCP [9]) for intra-DC traffic, Alibaba's
//! regional WAN trace (FlashPass [65]) for inter-DC traffic, and a Google
//! RPC distribution [53] for the small-message background of Fig. 4. The
//! original trace files ship with the paper's artifact; here we embed
//! point-sets reconstructed from the published figures of the cited papers.
//! Shapes (heavy tails, size ranges) match; exact percentiles are
//! approximations — a substitution recorded in DESIGN.md §2.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An empirical CDF over flow sizes in bytes, sampled by inverse transform
/// with linear interpolation between points (htsim's convention).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cdf {
    /// (size_bytes, cumulative_probability) points, strictly increasing in
    /// both coordinates, ending at probability 1.0.
    points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Build from (size, cumulative probability) points.
    ///
    /// # Panics
    /// If fewer than two points, probabilities are not non-decreasing in
    /// [0, 1] ending at 1.0, or sizes are not increasing and positive.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        let mut prev = (0.0f64, -1.0f64);
        for &(size, p) in &points {
            assert!(size > 0.0 && size > prev.0, "sizes must increase: {size}");
            assert!(
                (0.0..=1.0).contains(&p) && p >= prev.1,
                "bad probability {p}"
            );
            prev = (size, p);
        }
        assert!(
            (points.last().unwrap().1 - 1.0).abs() < 1e-9,
            "CDF must end at 1.0"
        );
        Cdf { points }
    }

    /// Draw one flow size in bytes.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    /// The `u`-quantile (inverse CDF) in bytes.
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        let mut prev_size = 0.0f64; // implicit origin (0 bytes, p=0)
        let mut prev_p = 0.0f64;
        for &(size, p) in &self.points {
            if u <= p {
                if p - prev_p < 1e-12 {
                    return size.max(1.0) as u64;
                }
                let frac = (u - prev_p) / (p - prev_p);
                let v = prev_size + frac * (size - prev_size);
                return v.max(1.0) as u64;
            }
            prev_size = size;
            prev_p = p;
        }
        self.points.last().unwrap().0 as u64
    }

    /// Analytic mean of the interpolated distribution, in bytes.
    pub fn mean(&self) -> f64 {
        // Piecewise-linear inverse CDF: each segment contributes
        // (p_i - p_{i-1}) * (size_{i-1} + size_i) / 2.
        let mut mean = 0.0;
        let mut prev_size = 0.0f64;
        let mut prev_p = 0.0f64;
        for &(size, p) in &self.points {
            mean += (p - prev_p) * (prev_size + size) / 2.0;
            prev_size = size;
            prev_p = p;
        }
        mean
    }

    /// Largest size in the distribution.
    pub fn max(&self) -> u64 {
        self.points.last().unwrap().0 as u64
    }

    /// Google web search flow sizes (DCTCP paper, Fig. 4 of [9]); the
    /// paper's intra-DC workload. Heavy-tailed: ~50% of flows under 100 KB
    /// but most bytes in multi-megabyte flows. Mean ≈ 1.6 MB.
    pub fn websearch() -> Self {
        Cdf::new(vec![
            (6_000.0, 0.15),
            (13_000.0, 0.28),
            (19_000.0, 0.35),
            (33_000.0, 0.40),
            (53_000.0, 0.47),
            (133_000.0, 0.53),
            (667_000.0, 0.60),
            (1_333_000.0, 0.70),
            (3_333_000.0, 0.80),
            (6_667_000.0, 0.90),
            (20_000_000.0, 0.97),
            (30_000_000.0, 1.00),
        ])
    }

    /// Alibaba inter-DC WAN flow sizes (FlashPass [65]); the paper's
    /// inter-DC workload. All sizes below 300 MB (as the paper notes in §1),
    /// with a strong small-transfer mode and a long tail.
    pub fn alibaba_wan() -> Self {
        Cdf::new(vec![
            (10_000.0, 0.10),
            (100_000.0, 0.30),
            (500_000.0, 0.50),
            (1_000_000.0, 0.60),
            (5_000_000.0, 0.72),
            (20_000_000.0, 0.85),
            (50_000_000.0, 0.92),
            (100_000_000.0, 0.97),
            (300_000_000.0, 1.00),
        ])
    }

    /// "Google RPC" small-message distribution (Homa [53] workload W4
    /// shape); used for the latency-sensitive background traffic of Fig. 4.
    pub fn google_rpc() -> Self {
        Cdf::new(vec![
            (64.0, 0.20),
            (256.0, 0.40),
            (512.0, 0.55),
            (1_024.0, 0.70),
            (4_096.0, 0.85),
            (10_000.0, 0.92),
            (64_000.0, 0.97),
            (256_000.0, 0.99),
            (1_000_000.0, 1.00),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn quantile_endpoints() {
        let c = Cdf::new(vec![(100.0, 0.5), (1000.0, 1.0)]);
        assert_eq!(c.quantile(0.0), 1); // interpolates from origin, min 1 byte
        assert_eq!(c.quantile(0.5), 100);
        assert_eq!(c.quantile(1.0), 1000);
        assert_eq!(c.max(), 1000);
    }

    #[test]
    fn quantile_interpolates_linearly() {
        let c = Cdf::new(vec![(100.0, 0.5), (1100.0, 1.0)]);
        // u = 0.75 is halfway through the second segment.
        assert_eq!(c.quantile(0.75), 600);
    }

    #[test]
    fn sample_mean_converges_to_analytic_mean() {
        let c = Cdf::websearch();
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| c.sample(&mut rng) as f64).sum();
        let emp = total / n as f64;
        let ana = c.mean();
        assert!(
            (emp - ana).abs() / ana < 0.05,
            "empirical {emp} vs analytic {ana}"
        );
    }

    #[test]
    fn websearch_mean_is_megabytes() {
        let m = Cdf::websearch().mean();
        assert!((1.0e6..4.0e6).contains(&m), "websearch mean {m}");
    }

    #[test]
    fn alibaba_all_below_300mb() {
        let c = Cdf::alibaba_wan();
        assert_eq!(c.max(), 300_000_000);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(c.sample(&mut rng) <= 300_000_000);
        }
    }

    #[test]
    fn google_rpc_is_mostly_small() {
        let c = Cdf::google_rpc();
        let mut rng = SmallRng::seed_from_u64(5);
        let small = (0..10_000).filter(|_| c.sample(&mut rng) <= 4096).count();
        assert!(small > 7_000, "small fraction {small}");
    }

    #[test]
    fn samples_never_zero() {
        let c = Cdf::google_rpc();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(c.sample(&mut rng) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "CDF must end at 1.0")]
    fn rejects_incomplete_cdf() {
        let _ = Cdf::new(vec![(10.0, 0.2), (20.0, 0.8)]);
    }

    #[test]
    #[should_panic(expected = "sizes must increase")]
    fn rejects_decreasing_sizes() {
        let _ = Cdf::new(vec![(100.0, 0.5), (50.0, 1.0)]);
    }
}
