//! Traffic generators reproducing the paper's workloads (§5.1):
//! incast microbenchmarks, permutation traffic, and Poisson-arrival mixes of
//! intra-DC (web search) and inter-DC (Alibaba WAN) flows at a target load.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use uno_sim::{Bps, Time, SECONDS};

use crate::cdf::Cdf;
use crate::spec::FlowSpec;

/// Incast microbenchmark (paper Figs. 3 and 8): `n_intra` senders in the
/// destination's DC and `n_inter` senders in the remote DC, all sending
/// `size` bytes to host 0 of DC 0 starting at t=0.
///
/// Senders are spread across distinct hosts (skipping the destination).
pub fn incast(n_intra: usize, n_inter: usize, size: u64, hosts_per_dc: u32) -> Vec<FlowSpec> {
    assert!(
        (n_intra as u32) < hosts_per_dc && n_inter as u32 <= hosts_per_dc,
        "not enough hosts for the requested incast"
    );
    let mut flows = Vec::with_capacity(n_intra + n_inter);
    for i in 0..n_intra {
        flows.push(FlowSpec {
            src_dc: 0,
            // Spread intra senders across the DC, away from the receiver.
            src_idx: 1 + (i as u32 * (hosts_per_dc - 1) / n_intra.max(1) as u32),
            dst_dc: 0,
            dst_idx: 0,
            size,
            start: 0,
        });
    }
    for i in 0..n_inter {
        flows.push(FlowSpec {
            src_dc: 1,
            src_idx: i as u32 * hosts_per_dc / n_inter.max(1) as u32,
            dst_dc: 0,
            dst_idx: 0,
            size,
            start: 0,
        });
    }
    flows
}

/// Permutation workload (paper Fig. 9): every host sends `size` bytes to a
/// distinct randomly selected host (possibly in the other DC); no host
/// receives more than one flow and nobody sends to themselves.
pub fn permutation<R: Rng>(hosts_per_dc: u32, dcs: u8, size: u64, rng: &mut R) -> Vec<FlowSpec> {
    let total = hosts_per_dc as usize * dcs as usize;
    // Random derangement by retry (expected ~e tries).
    let mut targets: Vec<usize> = (0..total).collect();
    loop {
        targets.shuffle(rng);
        if targets.iter().enumerate().all(|(i, &t)| i != t) {
            break;
        }
    }
    (0..total)
        .map(|i| FlowSpec {
            src_dc: (i as u32 / hosts_per_dc) as u8,
            src_idx: i as u32 % hosts_per_dc,
            dst_dc: (targets[i] as u32 / hosts_per_dc) as u8,
            dst_idx: targets[i] as u32 % hosts_per_dc,
            size,
            start: 0,
        })
        .collect()
}

/// Parameters for the realistic Poisson-arrival mixed workload
/// (paper Figs. 10–12).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PoissonMixParams {
    /// Hosts per datacenter in the target topology.
    pub hosts_per_dc: u32,
    /// Number of datacenters (2 for the paper's experiments).
    pub dcs: u8,
    /// Host link bandwidth (used to translate load into arrival rate).
    pub host_bps: Bps,
    /// Target average load as a fraction of aggregate host capacity.
    pub load: f64,
    /// Fraction of flows that cross datacenters (paper: DC:WAN = 4:1 → 0.2).
    pub inter_fraction: f64,
    /// Workload duration (arrivals occur in `[0, duration)`).
    pub duration: Time,
}

/// Generate the realistic mixed workload: flows arrive per a Poisson process
/// whose rate achieves `load`; sources and destinations are uniform random;
/// intra-DC sizes come from `intra_cdf` (web search) and inter-DC sizes from
/// `inter_cdf` (Alibaba WAN).
pub fn poisson_mix<R: Rng>(
    p: &PoissonMixParams,
    intra_cdf: &Cdf,
    inter_cdf: &Cdf,
    rng: &mut R,
) -> Vec<FlowSpec> {
    assert!(p.load > 0.0 && p.load < 1.5, "implausible load {}", p.load);
    assert!((0.0..=1.0).contains(&p.inter_fraction));
    assert!(p.dcs == 2 || p.inter_fraction == 0.0);
    let n_hosts = p.hosts_per_dc as f64 * p.dcs as f64;
    let mean_size =
        (1.0 - p.inter_fraction) * intra_cdf.mean() + p.inter_fraction * inter_cdf.mean();
    let capacity_bytes_per_sec = n_hosts * p.host_bps as f64 / 8.0;
    let lambda = p.load * capacity_bytes_per_sec / mean_size; // flows/sec
    let mut flows = Vec::new();
    let mut t = 0.0f64; // seconds
    let horizon = p.duration as f64 / SECONDS as f64;
    loop {
        // Exponential inter-arrival.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        t += -u.ln() / lambda;
        if t >= horizon {
            break;
        }
        let inter = p.dcs > 1 && rng.gen::<f64>() < p.inter_fraction;
        let src_dc = rng.gen_range(0..p.dcs);
        let src_idx = rng.gen_range(0..p.hosts_per_dc);
        let (dst_dc, dst_idx) = if inter {
            ((src_dc + 1) % p.dcs, rng.gen_range(0..p.hosts_per_dc))
        } else {
            // Distinct destination within the same DC.
            let mut d = rng.gen_range(0..p.hosts_per_dc);
            while d == src_idx {
                d = rng.gen_range(0..p.hosts_per_dc);
            }
            (src_dc, d)
        };
        let size = if inter {
            inter_cdf.sample(rng)
        } else {
            intra_cdf.sample(rng)
        };
        flows.push(FlowSpec {
            src_dc,
            src_idx,
            dst_dc,
            dst_idx,
            size,
            start: (t * SECONDS as f64) as Time,
        });
    }
    flows
}

/// One data-parallel Allreduce iteration across two datacenters
/// (paper §5.1, Fig. 13C): after the backward pass each DC holds a gradient
/// replica; synchronizing them moves the gradient volume across the WAN,
/// split over `groups` concurrent channels in both directions.
///
/// `total_bytes` is the per-direction gradient volume (the paper's
/// Llama-70B-style setup generates ~70–500 MiB bursts per iteration).
pub fn allreduce_iteration<R: Rng>(
    groups: u32,
    total_bytes: u64,
    hosts_per_dc: u32,
    rng: &mut R,
) -> Vec<FlowSpec> {
    assert!(groups > 0 && groups <= hosts_per_dc);
    let per_flow = total_bytes / groups as u64;
    let mut flows = Vec::with_capacity(2 * groups as usize);
    let offset = rng.gen_range(0..hosts_per_dc);
    for g in 0..groups {
        let a = (offset + g) % hosts_per_dc;
        // dc0 -> dc1 and dc1 -> dc0 halves of the reduce-scatter/all-gather.
        flows.push(FlowSpec {
            src_dc: 0,
            src_idx: a,
            dst_dc: 1,
            dst_idx: a,
            size: per_flow,
            start: 0,
        });
        flows.push(FlowSpec {
            src_dc: 1,
            src_idx: a,
            dst_dc: 0,
            dst_idx: a,
            size: per_flow,
            start: 0,
        });
    }
    flows
}

/// Ideal (contention- and loss-free) completion time of an Allreduce
/// iteration: the per-direction volume divided by the aggregate inter-DC
/// bandwidth, plus one WAN RTT.
pub fn allreduce_ideal_time(total_bytes: u64, inter_dc_bps: Bps, inter_rtt: Time) -> Time {
    uno_sim::time::serialization_time(total_bytes, inter_dc_bps) + inter_rtt
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use uno_sim::{GBPS, MILLIS};

    #[test]
    fn incast_targets_one_host() {
        let flows = incast(4, 4, 1 << 30, 128);
        assert_eq!(flows.len(), 8);
        assert!(flows.iter().all(|f| f.dst_dc == 0 && f.dst_idx == 0));
        assert_eq!(flows.iter().filter(|f| f.is_inter()).count(), 4);
        // No sender is the receiver.
        assert!(flows.iter().all(|f| !(f.src_dc == 0 && f.src_idx == 0)));
        // Senders are distinct.
        let mut srcs: Vec<(u8, u32)> = flows.iter().map(|f| (f.src_dc, f.src_idx)).collect();
        srcs.sort_unstable();
        srcs.dedup();
        assert_eq!(srcs.len(), 8);
    }

    #[test]
    fn permutation_is_a_derangement() {
        let mut rng = SmallRng::seed_from_u64(1);
        let flows = permutation(16, 2, 1000, &mut rng);
        assert_eq!(flows.len(), 32);
        let mut dsts: Vec<(u8, u32)> = flows.iter().map(|f| (f.dst_dc, f.dst_idx)).collect();
        dsts.sort_unstable();
        dsts.dedup();
        assert_eq!(dsts.len(), 32, "each host receives exactly one flow");
        assert!(flows
            .iter()
            .all(|f| (f.src_dc, f.src_idx) != (f.dst_dc, f.dst_idx)));
    }

    #[test]
    fn poisson_mix_hits_target_load() {
        let p = PoissonMixParams {
            hosts_per_dc: 16,
            dcs: 2,
            host_bps: 100 * GBPS,
            load: 0.4,
            inter_fraction: 0.2,
            duration: 50 * MILLIS,
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let flows = poisson_mix(&p, &Cdf::websearch(), &Cdf::alibaba_wan(), &mut rng);
        assert!(!flows.is_empty());
        let bytes: u64 = flows.iter().map(|f| f.size).sum();
        let offered =
            bytes as f64 * 8.0 / (p.duration as f64 / SECONDS as f64) / (32.0 * p.host_bps as f64);
        assert!(
            (offered - 0.4).abs() < 0.15,
            "offered load {offered} vs target 0.4"
        );
        // Inter fraction approximately 20% of flows.
        let inter = flows.iter().filter(|f| f.is_inter()).count() as f64 / flows.len() as f64;
        assert!((inter - 0.2).abs() < 0.08, "inter fraction {inter}");
        // Arrivals sorted-ish in time and within horizon.
        assert!(flows.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(flows.iter().all(|f| f.start < p.duration));
    }

    #[test]
    fn poisson_mix_no_self_flows() {
        let p = PoissonMixParams {
            hosts_per_dc: 4,
            dcs: 2,
            host_bps: 10 * GBPS,
            load: 0.5,
            inter_fraction: 0.2,
            duration: 20 * MILLIS,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let flows = poisson_mix(&p, &Cdf::google_rpc(), &Cdf::google_rpc(), &mut rng);
        assert!(flows
            .iter()
            .all(|f| (f.src_dc, f.src_idx) != (f.dst_dc, f.dst_idx)));
    }

    #[test]
    fn allreduce_iteration_shape() {
        let mut rng = SmallRng::seed_from_u64(4);
        let flows = allreduce_iteration(8, 256 << 20, 128, &mut rng);
        assert_eq!(flows.len(), 16);
        assert!(flows.iter().all(|f| f.is_inter()));
        let fwd: u64 = flows.iter().filter(|f| f.src_dc == 0).map(|f| f.size).sum();
        assert_eq!(fwd, 256 << 20);
    }

    #[test]
    fn allreduce_ideal_matches_math() {
        // 800 Gbps aggregate, 100 MiB, 2 ms RTT.
        let t = allreduce_ideal_time(100 << 20, 800 * GBPS, 2 * MILLIS);
        let ser = (100u64 << 20) * 8 * 1_000_000_000 / (800 * GBPS);
        assert_eq!(t, ser + 2 * MILLIS);
    }

    #[test]
    #[should_panic(expected = "not enough hosts")]
    fn incast_checks_host_count() {
        let _ = incast(20, 0, 100, 16);
    }
}
