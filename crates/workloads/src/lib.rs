//! # uno-workloads — traffic generation for the Uno reproduction
//!
//! Reproduces the paper's workload suite (§5.1):
//!
//! * **Incast** microbenchmarks — N intra-DC and M inter-DC senders
//!   converging on one receiver (Figs. 3, 4, 8);
//! * **Permutation** traffic — every host sends to a distinct random host
//!   (Fig. 9);
//! * **Realistic Poisson mixes** — Google web-search sizes inside the DC,
//!   Alibaba regional-WAN sizes across DCs, 4:1 intra:inter, arrival rates
//!   scaled to a target load (Figs. 10–12);
//! * **Data-parallel Allreduce** iterations with Llama-70B-scale gradient
//!   bursts across the WAN (Fig. 13C).
//!
//! Generators emit topology-independent [`FlowSpec`]s that the harness binds
//! to hosts of a concrete [`uno_sim::Topology`].

#![warn(missing_docs)]

pub mod cdf;
pub mod generators;
pub mod spec;

pub use cdf::Cdf;
pub use generators::{
    allreduce_ideal_time, allreduce_iteration, incast, permutation, poisson_mix, PoissonMixParams,
};
pub use spec::FlowSpec;
