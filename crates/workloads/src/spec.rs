//! Topology-independent flow specifications produced by the generators and
//! consumed by the experiment harness.

use serde::{Deserialize, Serialize};
use uno_sim::Time;

/// A flow to be instantiated: endpoints are (datacenter, host-index) pairs
/// resolved against a concrete topology by the harness.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Source datacenter.
    pub src_dc: u8,
    /// Source host index within its datacenter.
    pub src_idx: u32,
    /// Destination datacenter.
    pub dst_dc: u8,
    /// Destination host index within its datacenter.
    pub dst_idx: u32,
    /// Application bytes.
    pub size: u64,
    /// Absolute start time.
    pub start: Time,
}

impl FlowSpec {
    /// True when the flow crosses datacenters.
    pub fn is_inter(&self) -> bool {
        self.src_dc != self.dst_dc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_detection() {
        let f = FlowSpec {
            src_dc: 0,
            src_idx: 1,
            dst_dc: 1,
            dst_idx: 2,
            size: 100,
            start: 0,
        };
        assert!(f.is_inter());
        let g = FlowSpec { dst_dc: 0, ..f };
        assert!(!g.is_inter());
    }
}
