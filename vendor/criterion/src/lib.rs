//! Minimal offline stand-in for `criterion`.
//!
//! Provides the API surface used by this workspace's benches (benchmark
//! groups, throughput annotation, `black_box`, the `criterion_group!` /
//! `criterion_main!` macros) with a simple wall-clock measurement loop:
//! a short warm-up, then timed batches until ~0.5 s elapses, reporting the
//! median batch ns/iter. Numbers are indicative, not statistically rigorous.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter string.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/param` identifier.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{param}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `f` and record ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: let caches/branch predictors settle and estimate cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            warmup_iters += 1;
        }
        let est_ns =
            (warmup_start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64).max(1.0);
        // Aim for ~10 batches of ~50 ms each.
        let batch_iters = ((50_000_000.0 / est_ns) as u64).max(1);
        let mut samples: Vec<f64> = Vec::new();
        let bench_start = Instant::now();
        while samples.len() < 10 && bench_start.elapsed() < Duration::from_millis(500) {
            let t0 = Instant::now();
            for _ in 0..batch_iters {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch_iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let time = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            let per_sec = b as f64 / (ns / 1e9);
            format!("  {:.1} MiB/s", per_sec / (1u64 << 20) as f64)
        }
        Some(Throughput::Elements(e)) => {
            let per_sec = e as f64 / (ns / 1e9);
            format!("  {:.3} Melem/s", per_sec / 1e6)
        }
        None => String::new(),
    };
    println!("{name:<50} {time:>12}/iter{rate}");
}

/// Group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub sizes batches itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(name, b.ns_per_iter, None);
        self
    }
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
