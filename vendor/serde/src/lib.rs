//! Minimal offline stand-in for `serde`.
//!
//! Instead of upstream serde's visitor architecture, this stub uses a
//! simplified self-describing data model: [`Value`]. `Serialize` converts a
//! Rust value into a [`Value`] tree; `Deserialize` reads one back. The
//! companion `serde_derive` stub generates impls for structs with named
//! fields and for enums with unit / newtype / struct variants (externally
//! tagged, honouring `rename_all = "snake_case"`, `default`, and `skip`),
//! which covers every derive site in this workspace. `serde_json` prints and
//! parses [`Value`] as JSON.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// Self-describing data value — the interchange type between `Serialize`,
/// `Deserialize`, and format crates such as `serde_json`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (u64 and smaller).
    U64(u64),
    /// Signed integer that does not fit `U64`.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key-value map preserving insertion order (deterministic output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object (field list) if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as an array if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as f64 for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Short name of the variant for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// "expected X, found Y" helper.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }

    /// Missing struct field.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the serde data model.
pub trait Serialize {
    /// Produce the [`Value`] tree for `self`.
    fn serialize_value(&self) -> Value;
}

/// Reconstruct a value from the serde data model.
pub trait Deserialize: Sized {
    /// Parse `self` out of a [`Value`] tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

/// Fetch a struct field, falling back to `Null` deserialization when the key
/// is absent (this is how `Option` fields become `None` when omitted,
/// mirroring upstream serde's `missing_field` behaviour).
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(f) => T::deserialize_value(f).map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => T::deserialize_value(&Value::Null).map_err(|_| Error::missing_field(name)),
    }
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(n) if n <= <$t>::MAX as u64 => Ok(n as $t),
                    Value::I64(n) if n >= 0 && (n as u64) <= <$t>::MAX as u64 => Ok(n as $t),
                    Value::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= <$t>::MAX as f64 => Ok(n as $t),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(n) if n <= <$t>::MAX as u64 => Ok(n as $t),
                    Value::I64(n) if n >= <$t>::MIN as i64 && n <= <$t>::MAX as i64 => Ok(n as $t),
                    Value::F64(n) if n.fract() == 0.0 => Ok(n as $t),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|n| n as $t).ok_or_else(|| Error::expected("number", v))
            }
        }
    )*};
}
impl_float!(f32, f64);

// ----------------------------------------------------- other primitives

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, f)| Ok((k.clone(), V::deserialize_value(f)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($($len:literal => ($($name:ident $idx:tt),+),)+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                if a.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of length {}, found {}", $len, a.len())));
                }
                Ok(($($name::deserialize_value(&a[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple! {
    1 => (A 0),
    2 => (A 0, B 1),
    3 => (A 0, B 1, C 2),
    4 => (A 0, B 1, C 2, D 3),
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Compile-support items referenced by the derive macro expansion. Not part
/// of the public API.
pub mod __private {
    pub use super::{field, Deserialize, Error, Serialize, Value};
}
