//! Minimal offline stand-in for `parking_lot`, wrapping `std::sync`
//! primitives with parking_lot's poison-free API (lock never returns a
//! `Result`; a poisoned std lock is recovered transparently).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring std poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
        assert_eq!(l.into_inner(), "ab");
    }
}
