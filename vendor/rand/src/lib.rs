//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored stub
//! implements exactly the API surface the workspace uses: [`Rng`],
//! [`SeedableRng`], [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64)
//! and [`seq::SliceRandom::shuffle`]. The generator is deterministic for a
//! given seed, which is all the simulator requires; it is *not* intended to
//! be statistically indistinguishable from upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the full value domain
/// (the stub's analogue of sampling from the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly over its domain.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from OS entropy. The stub derives it from the
    /// current time; only used by code paths that do not need determinism.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small fast deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
