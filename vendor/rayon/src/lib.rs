//! Minimal offline stand-in for the `rayon` API surface used by this
//! workspace: `ThreadPoolBuilder`/`ThreadPool::install`, and ordered
//! `into_par_iter().map(..).collect()` over vectors and slices.
//!
//! Execution model: each `collect` distributes items over `std::thread`
//! scoped workers pulling indices from an atomic counter; results land in
//! their input slots, so collection order always equals input order, no
//! matter how the cells interleave in wall-clock time — the property the
//! deterministic sweep runner relies on. `ThreadPool::install` makes the
//! pool's thread budget ambient (thread-local) for parallel iterators run
//! inside the closure, mirroring how real rayon scopes work to a pool.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread budget installed by [`ThreadPool::install`]; `0` = default.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel iterators use on this thread right now.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this stub,
/// but part of the API surface).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the pool's thread count (`0` = one per available core).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical pool: a thread budget that `install` makes ambient. Workers
/// are spawned per parallel call (scoped threads), not kept alive — the
/// workloads this workspace fans out are seconds-long simulations, so
/// spawn overhead is noise.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread budget.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `f` with this pool's thread budget ambient: parallel iterators
    /// inside `f` (on this thread) split across `num_threads` workers.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.num_threads);
            let r = f();
            c.set(prev);
            r
        })
    }
}

/// Ordered parallel map over owned items: workers claim indices from an
/// atomic cursor, each result lands in its item's slot.
fn par_map_ordered<T, R, F>(items: Vec<T>, threads: usize, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..inputs.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= inputs.len() {
                    break;
                }
                let item = inputs[i].lock().unwrap().take().expect("item claimed once");
                let r = f(item);
                *outputs[i].lock().unwrap() = Some(r);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("all items mapped"))
        .collect()
}

pub mod iter {
    //! Parallel iterator types (the subset this workspace uses).

    use super::{current_num_threads, par_map_ordered};

    /// Conversion into a parallel iterator over owned items.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Iterator type.
        type Iter;
        /// Convert.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = ParIter<T>;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        type Iter = ParIter<&'a T>;
        fn into_par_iter(self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    /// Parallel iterator over a materialized item list.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        /// Map each item through `f` (executed on `collect`).
        pub fn map<R, F>(self, f: F) -> MapIter<T, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            MapIter {
                items: self.items,
                f,
            }
        }

        /// Pair each item with its index (like rayon's
        /// `IndexedParallelIterator::enumerate`).
        pub fn enumerate(self) -> ParIter<(usize, T)> {
            ParIter {
                items: self.items.into_iter().enumerate().collect(),
            }
        }
    }

    /// A mapped parallel iterator; `collect` runs it.
    pub struct MapIter<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, F> MapIter<T, F> {
        /// Execute across the ambient thread budget and collect results in
        /// input order.
        pub fn collect<C, R>(self) -> C
        where
            T: Send,
            R: Send,
            F: Fn(T) -> R + Sync,
            C: FromIterator<R>,
        {
            par_map_ordered(self.items, current_num_threads(), &self.f)
                .into_iter()
                .collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::iter::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ordered_collect_matches_sequential() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 3).collect();
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn install_scopes_thread_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn enumerate_pairs_items_with_indices() {
        let v = vec!["a", "b", "c"];
        let out: Vec<(usize, &str)> = v.into_par_iter().enumerate().map(|p| p).collect();
        assert_eq!(out, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    fn single_item_runs_inline() {
        let out: Vec<u32> = vec![7u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
