//! Bounded multi-producer multi-consumer channel on `Mutex` + `Condvar`.
//!
//! Mirrors the slice of `crossbeam_channel` this workspace needs:
//! `bounded(cap)`, cloneable `Sender`/`Receiver`, blocking `send`/`recv`
//! that error out once the other side has fully disconnected, and a
//! non-blocking `try_recv`. Not lock-free — the parallel engine exchanges
//! a handful of messages per conservative window, so contention is
//! negligible next to the window work itself.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    buf: VecDeque<T>,
    cap: usize,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Sending half. Cloning adds a producer; `send` blocks while full.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half. Cloning adds a consumer; `recv` blocks while empty.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// The message could not be delivered because every receiver is gone.
/// Carries the undelivered value back to the caller.
#[derive(Debug)]
pub struct SendError<T>(pub T);

/// The channel is empty and every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Reasons `try_recv` returned no message.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message buffered right now; senders still exist.
    Empty,
    /// No message buffered and every sender has disconnected.
    Disconnected,
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

/// Create a bounded channel holding at most `cap` messages (`cap` ≥ 1 is
/// enforced so a full buffer can always drain).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Block until there is room, then enqueue. Errors (returning the
    /// value) if every `Receiver` has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.buf.len() < st.cap {
                st.buf.push_back(value);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            st = self.chan.not_full.wait(st).unwrap();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives. Errors once the buffer is empty and
    /// every `Sender` has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.state.lock().unwrap();
        loop {
            if let Some(v) = st.buf.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.chan.not_empty.wait(st).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.state.lock().unwrap();
        if let Some(v) = st.buf.pop_front() {
            self.chan.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap().senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap().receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            // Wake blocked receivers so they observe disconnection.
            drop(st);
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = bounded::<u32>(2);
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn mpmc_roundtrip() {
        let (tx, rx) = bounded::<usize>(8);
        let mut handles = Vec::new();
        for w in 0..3 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    tx.send(w * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let got = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..2 {
                let rx = rx.clone();
                let got = &got;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        got.lock().unwrap().push(v);
                    }
                });
            }
            drop(rx);
        });
        for h in handles {
            h.join().unwrap();
        }
        let mut got = got.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got.len(), 150);
        got.dedup();
        assert_eq!(got.len(), 150);
    }
}
