//! Minimal offline stand-in for the `crossbeam` APIs used by this
//! workspace, implemented on `std`. Two surfaces:
//!
//! - [`scope`]: scoped worker threads whose closures receive the scope
//!   handle (backed by `std::thread::scope`).
//! - [`channel`]: bounded MPMC channels (`Mutex` + `Condvar`), used by the
//!   parallel-DES engine to ship lane jobs to persistent workers and
//!   collect them back at window barriers.

pub mod channel;

/// Scope handle passed to [`scope`]'s closure and to spawned closures.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope handle (to
    /// match crossbeam's signature); joining is implicit at scope exit.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(&handle))
    }
}

/// Create a scope for spawning borrowing threads. Mirrors
/// `crossbeam::scope`: returns `Err` with the panic payload if any
/// unjoined spawned thread panicked (with `std::thread::scope` underneath,
/// a child panic propagates when the scope exits, so in practice a panic
/// unwinds out rather than surfacing as `Err`; callers that `.expect()`
/// the result behave identically either way).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    sums.lock().unwrap().push(chunk.iter().sum::<u64>());
                });
            }
        })
        .unwrap();
        let mut got = sums.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
    }
}
