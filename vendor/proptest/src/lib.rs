//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset used by this workspace's property tests: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! integer / float range strategies, `any::<T>()`, tuple strategies,
//! [`collection::vec`], and the `prop_assert*` macros. Cases are sampled
//! from a deterministic seeded generator; there is no shrinking — a failing
//! case panics with the sampled inputs' debug representation.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (a subset of upstream's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of some type.
pub trait Strategy {
    /// The type of values produced.
    type Value: std::fmt::Debug;

    /// Sample one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Strategy for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform sampling over the whole domain of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_any!(bool, u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+),)+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy producing `Vec`s of values from `element` with a length
    /// drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy {
            element,
            min: size.min,
            max: size.max,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let len = if self.min >= self.max {
                self.min
            } else {
                rng.gen_range(self.min..self.max)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Length specification accepted by [`collection::vec`].
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Derive a stable per-test seed so each property test explores the same
/// cases on every run (deterministic CI), independent of other tests.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Run the body for each sampled case (used by the [`proptest!`] macro).
pub fn run_cases(cases: u32, test_name: &str, mut body: impl FnMut(&mut SmallRng)) {
    let mut rng = SmallRng::seed_from_u64(seed_for(test_name));
    for case in 0..cases {
        // Give each case an independent stream so a panic message's case
        // number is enough to re-derive its inputs.
        let mut case_rng = SmallRng::seed_from_u64(rng.next_u64() ^ case as u64);
        body(&mut case_rng);
    }
}

/// Assert within a property test (stub: plain `assert!`, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property test (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property test (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests. Supports an optional `#![proptest_config(..)]`
/// header followed by `fn name(arg in strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
     $( $(#[$meta:meta])* fn $name:ident
        ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(cfg.cases, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)*
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3u32..17, y in 0usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_strategy_lengths(v in crate::collection::vec((any::<bool>(), 1u32..5), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (_, n) in v {
                prop_assert!((1..5).contains(&n));
            }
        }
    }
}
