//! Minimal offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` without
//! `syn`/`quote`: the item's `TokenStream` is parsed directly and the impl is
//! generated as a string. Supports the shapes used in this workspace:
//!
//! * structs with named fields (`#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]`)
//! * tuple structs (newtype ids serialize as their inner value, wider tuples
//!   as arrays)
//! * enums with unit / newtype / struct variants, externally tagged, with
//!   optional container `#[serde(rename_all = "snake_case")]`
//!
//! Generated code targets the simplified value-model traits of the vendored
//! `serde` stub (`serialize_value` / `deserialize_value`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    /// `Some("")` for bare `default`, `Some(path)` for `default = "path"`.
    default: Option<String>,
    rename: Option<String>,
}

#[derive(Default)]
struct ContainerAttrs {
    rename_all_snake: bool,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
        attrs: ContainerAttrs,
    },
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

/// Parse any leading `#[...]` attributes; collect `serde(...)` contents.
fn take_attrs(tokens: &[TokenTree], mut pos: usize) -> (usize, FieldAttrs, ContainerAttrs) {
    let mut fa = FieldAttrs::default();
    let mut ca = ContainerAttrs::default();
    while pos + 1 < tokens.len() {
        let is_hash = matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        let TokenTree::Group(g) = &tokens[pos + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    parse_serde_args(args.stream(), &mut fa, &mut ca);
                }
            }
        }
        pos += 2;
    }
    (pos, fa, ca)
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_serde_args(ts: TokenStream, fa: &mut FieldAttrs, ca: &mut ContainerAttrs) {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let TokenTree::Ident(key) = &toks[i] else {
            i += 1;
            continue;
        };
        let key = key.to_string();
        let mut value: Option<String> = None;
        if let Some(TokenTree::Punct(p)) = toks.get(i + 1) {
            if p.as_char() == '=' {
                if let Some(TokenTree::Literal(l)) = toks.get(i + 2) {
                    value = Some(strip_quotes(&l.to_string()));
                }
                i += 2;
            }
        }
        match (key.as_str(), value) {
            ("skip", _) | ("skip_serializing", _) | ("skip_deserializing", _) => fa.skip = true,
            ("default", None) => fa.default = Some(String::new()),
            ("default", Some(path)) => fa.default = Some(path),
            ("rename", Some(name)) => fa.rename = Some(name),
            ("rename_all", Some(style)) => {
                if style == "snake_case" {
                    ca.rename_all_snake = true;
                } else {
                    panic!("serde stub: unsupported rename_all = \"{style}\"");
                }
            }
            _ => panic!("serde stub: unsupported serde attribute `{key}`"),
        }
        // Skip a trailing comma.
        if let Some(TokenTree::Punct(p)) = toks.get(i + 1) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        i += 1;
    }
}

/// Advance past a field's type: consume until a top-level `,` (angle-bracket
/// depth 0) or end of tokens. Returns the position *after* the comma.
fn skip_to_comma(tokens: &[TokenTree], mut pos: usize) -> usize {
    let mut angle: i32 = 0;
    while pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[pos] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return pos + 1,
                _ => {}
            }
        }
        pos += 1;
    }
    pos
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (new_pos, fa, _) = take_attrs(&tokens, pos);
        pos = new_pos;
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(pos) {
            if id.to_string() == "pub" {
                pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        pos += 1;
                    }
                }
            }
        }
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            break;
        };
        let name = name.to_string();
        pos += 1; // name
        pos += 1; // ':'
        pos = skip_to_comma(&tokens, pos);
        fields.push(Field { name, attrs: fa });
    }
    fields
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        count += 1;
        pos = skip_to_comma(&tokens, pos);
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (new_pos, _fa, _) = take_attrs(&tokens, pos);
        pos = new_pos;
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            break;
        };
        let name = name.to_string();
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                pos += 1;
                if n == 1 {
                    VariantKind::Newtype
                } else {
                    VariantKind::Tuple(n)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g);
                pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant and/or trailing comma.
        pos = skip_to_comma(&tokens, pos);
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> (Item, ContainerAttrs) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut pos, _fa, ca) = take_attrs(&tokens, 0);
    // Visibility.
    if let Some(TokenTree::Ident(id)) = tokens.get(pos) {
        if id.to_string() == "pub" {
            pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    let Some(TokenTree::Ident(kw)) = tokens.get(pos) else {
        panic!("serde stub: expected struct or enum");
    };
    let kw = kw.to_string();
    pos += 1;
    let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
        panic!("serde stub: expected item name");
    };
    let name = name.to_string();
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde stub: generic types are not supported (derive on `{name}`)");
        }
    }
    match kw.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => (
                Item::Struct {
                    name,
                    fields: parse_named_fields(g),
                },
                ca,
            ),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => (
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g),
                },
                ca,
            ),
            _ => (Item::UnitStruct { name }, ca),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g);
                (
                    Item::Enum {
                        name,
                        variants,
                        attrs: ContainerAttrs {
                            rename_all_snake: ca.rename_all_snake,
                        },
                    },
                    ca,
                )
            }
            _ => panic!("serde stub: malformed enum"),
        },
        other => panic!("serde stub: cannot derive for `{other}` items"),
    }
}

fn field_key(f: &Field) -> String {
    f.attrs.rename.clone().unwrap_or_else(|| f.name.clone())
}

fn variant_key(v: &Variant, snake: bool) -> String {
    if snake {
        snake_case(&v.name)
    } else {
        v.name.clone()
    }
}

// ------------------------------------------------------------- Serialize

/// Derive the vendored-serde `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (item, _ca) = parse_item(input);
    let code = match item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.attrs.skip)
                .map(|f| {
                    format!(
                        "(\"{key}\".to_string(), \
                         ::serde::Serialize::serialize_value(&self.{n}))",
                        key = field_key(f),
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn serialize_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Object(vec![{}])\n\
                   }}\n\
                 }}",
                entries.join(",\n")
            )
        }
        Item::TupleStruct { name, arity } => {
            if arity == 1 {
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                       fn serialize_value(&self) -> ::serde::Value {{\n\
                         ::serde::Serialize::serialize_value(&self.0)\n\
                       }}\n\
                     }}"
                )
            } else {
                let elems: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                       fn serialize_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{}])\n\
                       }}\n\
                     }}",
                    elems.join(", ")
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn serialize_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum {
            name,
            variants,
            attrs,
        } => {
            let mut arms = String::new();
            for v in &variants {
                let key = variant_key(v, attrs.rename_all_snake);
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{key}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{v}(x) => ::serde::Value::Object(vec![(\
                           \"{key}\".to_string(), \
                           ::serde::Serialize::serialize_value(x))]),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(vec![(\
                               \"{key}\".to_string(), \
                               ::serde::Value::Array(vec![{elems}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            elems = elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.attrs.skip)
                            .map(|f| {
                                format!(
                                    "(\"{key}\".to_string(), \
                                     ::serde::Serialize::serialize_value({n}))",
                                    key = field_key(f),
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => \
                               ::serde::Value::Object(vec![(\"{key}\".to_string(), \
                                 ::serde::Value::Object(vec![{entries}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            entries = entries.join(",\n")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn serialize_value(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}}}\n\
                   }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde stub: generated Serialize impl must parse")
}

// ----------------------------------------------------------- Deserialize

fn named_field_expr(f: &Field, src: &str) -> String {
    if f.attrs.skip {
        return format!("{n}: ::std::default::Default::default(),\n", n = f.name);
    }
    let key = field_key(f);
    match &f.attrs.default {
        None => format!("{n}: ::serde::field({src}, \"{key}\")?,\n", n = f.name),
        Some(path) => {
            let fallback = if path.is_empty() {
                "::std::default::Default::default()".to_string()
            } else {
                format!("{path}()")
            };
            format!(
                "{n}: match {src}.get(\"{key}\") {{\n\
                   Some(x) => match ::serde::Deserialize::deserialize_value(x) {{\n\
                     Ok(val) => val,\n\
                     Err(e) => return Err(::serde::Error::custom(\
                       format!(\"field `{key}`: {{e}}\"))),\n\
                   }},\n\
                   None => {fallback},\n\
                 }},\n",
                n = f.name
            )
        }
    }
}

/// Derive the vendored-serde `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (item, _ca) = parse_item(input);
    let code = match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&named_field_expr(f, "v"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn deserialize_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     if v.as_object().is_none() {{\n\
                       return Err(::serde::Error::expected(\"object\", v));\n\
                     }}\n\
                     Ok({name} {{\n{inits}}})\n\
                   }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                       fn deserialize_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         Ok({name}(::serde::Deserialize::deserialize_value(v)?))\n\
                       }}\n\
                     }}"
                )
            } else {
                let elems: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Deserialize::deserialize_value(&a[{i}])?"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                       fn deserialize_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let a = v.as_array()\
                           .ok_or_else(|| ::serde::Error::expected(\"array\", v))?;\n\
                         if a.len() != {arity} {{\n\
                           return Err(::serde::Error::custom(\"wrong tuple length\"));\n\
                         }}\n\
                         Ok({name}({}))\n\
                       }}\n\
                     }}",
                    elems.join(", ")
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn deserialize_value(_v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ Ok({name}) }}\n\
             }}"
        ),
        Item::Enum {
            name,
            variants,
            attrs,
        } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in &variants {
                let key = variant_key(v, attrs.rename_all_snake);
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{key}\" => Ok({name}::{v}),\n", v = v.name))
                    }
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "\"{key}\" => Ok({name}::{v}(\
                           ::serde::Deserialize::deserialize_value(payload)?)),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize_value(&a[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{key}\" => {{\n\
                               let a = payload.as_array()\
                                 .ok_or_else(|| ::serde::Error::expected(\"array\", payload))?;\n\
                               if a.len() != {n} {{\n\
                                 return Err(::serde::Error::custom(\"wrong tuple length\"));\n\
                               }}\n\
                               Ok({name}::{v}({elems}))\n\
                             }}\n",
                            v = v.name,
                            elems = elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&named_field_expr(f, "payload"));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{key}\" => {{\n\
                               if payload.as_object().is_none() {{\n\
                                 return Err(::serde::Error::expected(\"object\", payload));\n\
                               }}\n\
                               Ok({name}::{v} {{\n{inits}}})\n\
                             }}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn deserialize_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     match v {{\n\
                       ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => Err(::serde::Error::custom(\
                           format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                       }},\n\
                       ::serde::Value::Object(o) if o.len() == 1 => {{\n\
                         let (tag, payload) = (&o[0].0, &o[0].1);\n\
                         let _ = payload;\n\
                         match tag.as_str() {{\n\
                           {tagged_arms}\
                           other => Err(::serde::Error::custom(\
                             format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                       }},\n\
                       _ => Err(::serde::Error::expected(\
                         \"string or single-key object\", v)),\n\
                     }}\n\
                   }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde stub: generated Deserialize impl must parse")
}
