//! Minimal offline stand-in for `serde_json`, printing and parsing the
//! vendored serde stub's [`Value`] model as JSON.
//!
//! Output is deterministic: object fields keep insertion order, integers are
//! printed without a decimal point, and floats use Rust's shortest
//! round-trippable formatting (`{:?}`). That determinism is what the trace
//! subsystem's byte-identical same-seed guarantee builds on.

pub use serde::Value;
use serde::{Deserialize, Error, Serialize};
use std::fmt::Write as _;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize a value to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into a deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::deserialize_value(&v)
}

/// Parse a JSON string into a raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

// --------------------------------------------------------------- printer

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => {
            if n.is_finite() {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{:.1}", n);
                } else {
                    let _ = write!(out, "{:?}", n);
                }
            } else {
                // JSON has no Inf/NaN; upstream serde_json errors here, the
                // stub follows its `json!` lenient cousins and emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(o) => {
            if o.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(42)),
            ("b".into(), Value::Array(vec![Value::F64(1.5), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::Bool(true)),
            ("e".into(), Value::I64(-3)),
        ]);
        let s = to_string(&v).unwrap();
        let back = parse_value(&s).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<(u64, f64)> = vec![(1, 0.5), (2, 2.0)];
        let s = to_string(&xs).unwrap();
        assert_eq!(s, "[[1,0.5],[2,2.0]]");
        let back: Vec<(u64, f64)> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn integers_stay_integers() {
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        let n: u64 = from_str(&u64::MAX.to_string()).unwrap();
        assert_eq!(n, u64::MAX);
    }
}
