//! Failure resilience: an inter-DC transfer survives a border-link failure.
//!
//! Compares UnoRC (UnoLB subflows + (8,2) erasure coding) against plain
//! ECMP when one of the WAN links dies mid-transfer — the paper's Fig. 13A
//! scenario in miniature. ECMP pins the flow to one hashed path, so a dead
//! link stalls it until retransmission timeouts fire; UnoLB notices the
//! silent subflow via the receiver's block NACKs and re-routes within one
//! RTT, while parity packets reconstruct the blocks that lost packets.
//!
//! ```text
//! cargo run --release --example failover
//! ```

use uno::sim::{MILLIS, SECONDS};
use uno::{Experiment, ExperimentConfig, SchemeSpec};
use uno_erasure::EcParams;
use uno_transport::LbMode;
use uno_workloads::FlowSpec;

fn run(scheme: SchemeSpec, seed: u64) -> (String, Option<f64>) {
    let name = scheme.name.to_string();
    let mut exp = Experiment::new(ExperimentConfig::quick(scheme, seed));
    exp.add_specs(&[FlowSpec {
        src_dc: 0,
        src_idx: 2,
        dst_dc: 1,
        dst_idx: 5,
        size: 16 << 20,
        start: 0,
    }]);
    // Kill one border link shortly after the flow starts.
    let victim = exp.sim.topo.border_forward[0];
    exp.sim.schedule_link_down(victim, MILLIS / 2);
    let r = exp.run(10 * SECONDS);
    let fct = r.fcts.first().map(|f| f.fct() as f64 / 1e6);
    (name, fct)
}

fn main() {
    println!("16 MiB inter-DC transfer; one border link fails at t=0.5 ms");
    println!("(5 seeds per scheme: a single run depends on the initial paths)\n");
    let schemes = [
        SchemeSpec::unocc_with(
            "UnoRC (UnoLB + EC)",
            LbMode::UnoLb { subflows: 10 },
            Some(EcParams::PAPER_DEFAULT),
        ),
        SchemeSpec::unocc_with("UnoLB, no EC", LbMode::UnoLb { subflows: 10 }, None),
        SchemeSpec::unocc_with("ECMP, no EC", LbMode::Ecmp, None),
    ];
    for scheme in schemes {
        let mut cells = Vec::new();
        let mut name = String::new();
        for seed in 1..=5 {
            let (n, fct) = run(scheme.clone(), seed);
            name = n;
            cells.push(match fct {
                Some(ms) => format!("{ms:8.2}"),
                None => " stalled".to_string(),
            });
        }
        println!("{name:>20} (ms): {}", cells.join(" "));
    }
    println!("\nECMP either dodges the dead link entirely or stalls forever on it;");
    println!("UnoLB re-routes but pays retransmission timeouts without EC; UnoRC");
    println!("(subflows + parity) absorbs the failure within a few RTTs.");
}
