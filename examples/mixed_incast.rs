//! Mixed incast fairness: intra- and inter-DC flows share one bottleneck.
//!
//! Two local and two remote senders converge on one receiver. With Uno's
//! unified control loop, both classes react to ECN at the same epoch
//! granularity and approach their fair bandwidth shares; the example prints
//! each flow's rate curve and Jain's fairness index over time (the paper's
//! Fig. 3 in miniature).
//!
//! ```text
//! cargo run --release --example mixed_incast
//! ```

use uno::metrics::{jain_fairness, rates_from_progress};
use uno::sim::{MILLIS, SECONDS};
use uno::{Experiment, ExperimentConfig, SchemeSpec};
use uno_transport::LbMode;
use uno_workloads::incast;

fn main() {
    let mut cfg = ExperimentConfig::quick(SchemeSpec::uno().with_lb(LbMode::Spray), 11);
    cfg.record_progress = true;
    let mut exp = Experiment::new(cfg);
    let hosts = exp.sim.topo.params.hosts_per_dc() as u32;
    let specs = incast(2, 2, 64 << 20, hosts);
    exp.add_specs(&specs);
    let r = exp.run(30 * SECONDS);

    println!(
        "4-flow mixed incast (2 intra + 2 inter x 64 MiB), scheme: {}",
        r.scheme
    );
    println!(
        "{:>8} | intra0 intra1 inter0 inter1 (Gbps) | Jain",
        "t (ms)"
    );
    let bin = 5 * MILLIS;
    let series: Vec<_> = r
        .progress
        .iter()
        .map(|(_, p)| rates_from_progress(p, bin, r.sim_time))
        .collect();
    let nbins = series[0].len();
    for b in 0..nbins {
        let rates: Vec<f64> = series.iter().map(|s| s[b].rate_bps).collect();
        if rates.iter().sum::<f64>() < 1e8 {
            continue;
        }
        let cells: Vec<String> = rates.iter().map(|x| format!("{:6.1}", x / 1e9)).collect();
        println!(
            "{:8.1} | {} | {:.3}",
            series[0][b].time as f64 / 1e6,
            cells.join(" "),
            jain_fairness(&rates)
        );
    }
    for f in &r.fcts {
        println!(
            "flow {:?} ({:?}) FCT {:.2} ms",
            f.flow,
            f.class,
            f.fct() as f64 / 1e6
        );
    }
}
