//! Cross-datacenter training: gradient Allreduce over the WAN.
//!
//! The paper's motivating AI workload (§5.1, Fig. 13C): a data-parallel
//! job spans two datacenters; after each backward pass, gradient bursts
//! (70–500 MiB per direction at full scale; scaled down here) synchronize
//! across the border links over several concurrent channels. The example
//! runs a few iterations under loss and reports each iteration's Allreduce
//! time against the contention-free ideal.
//!
//! ```text
//! cargo run --release --example allreduce_training
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uno::sim::{GilbertElliott, SECONDS};
use uno::{Experiment, ExperimentConfig, SchemeSpec};
use uno_workloads::{allreduce_ideal_time, allreduce_iteration};

fn main() {
    let iterations = 5;
    let mut rng = SmallRng::seed_from_u64(3);

    println!("cross-DC data-parallel training: {iterations} Allreduce iterations\n");
    for iter in 0..iterations {
        let volume = rng.gen_range((16u64 << 20)..(64 << 20));
        let mut exp = Experiment::new(ExperimentConfig::quick(SchemeSpec::uno(), 100 + iter));
        let topo = exp.sim.topo.params.clone();
        let specs = allreduce_iteration(
            topo.border_links as u32,
            volume,
            topo.hosts_per_dc() as u32,
            &mut rng,
        );
        exp.add_specs(&specs);
        // WAN links drop packets in correlated bursts (Table 1 model).
        let model = GilbertElliott::new(2e-4, 0.4, 0.0, 0.5);
        for l in exp
            .sim
            .topo
            .border_forward
            .clone()
            .into_iter()
            .chain(exp.sim.topo.border_reverse.clone())
        {
            exp.sim.set_link_loss(l, model.clone());
        }
        let r = exp.run(30 * SECONDS);
        let agg_bw = topo.border_link_bps * topo.border_links as u64;
        let ideal = allreduce_ideal_time(volume, agg_bw, topo.inter_rtt);
        println!(
            "iteration {iter}: {:5.1} MiB/direction, allreduce {:7.3} ms (ideal {:6.3} ms, ratio {:.2}x)",
            volume as f64 / (1 << 20) as f64,
            r.sim_time as f64 / 1e6,
            ideal as f64 / 1e6,
            r.sim_time as f64 / ideal as f64,
        );
    }
}
