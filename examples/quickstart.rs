//! Quickstart: run one Uno flow across the simulated WAN and print its FCT.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use uno::sim::{FlowClass, SECONDS};
use uno::{Experiment, ExperimentConfig, SchemeSpec};
use uno_workloads::FlowSpec;

fn main() {
    // A scaled-down dual-datacenter fat-tree (k=4, 16 hosts per DC,
    // 100 Gbps links, 14 us intra-DC RTT, 2 ms inter-DC RTT) running the
    // full Uno stack: UnoCC congestion control over phantom queues, UnoLB
    // subflow load balancing, and (8,2) erasure coding on WAN flows.
    let mut exp = Experiment::new(ExperimentConfig::quick(SchemeSpec::uno(), 42));

    // One 8 MiB message from host 0 of DC 0 to host 3 of DC 1, plus one
    // intra-DC message between two hosts of DC 0.
    exp.add_specs(&[
        FlowSpec {
            src_dc: 0,
            src_idx: 0,
            dst_dc: 1,
            dst_idx: 3,
            size: 8 << 20,
            start: 0,
        },
        FlowSpec {
            src_dc: 0,
            src_idx: 1,
            dst_dc: 0,
            dst_idx: 9,
            size: 8 << 20,
            start: 0,
        },
    ]);

    let results = exp.run(SECONDS);
    assert!(results.all_completed);

    println!("scheme: {}", results.scheme);
    for fct in &results.fcts {
        let class = match fct.class {
            FlowClass::Inter => "inter-DC",
            FlowClass::Intra => "intra-DC",
        };
        println!(
            "{class} flow {:?}: {} bytes in {:.3} ms",
            fct.flow,
            fct.size,
            fct.fct() as f64 / 1e6
        );
    }
    let stats = results.stats;
    println!(
        "network: {} packets transmitted, {} ECN marks, {} drops",
        stats.tx_packets, stats.ecn_marks, stats.queue_drops
    );

    // Every run carries a manifest: seed, topology, engine throughput and
    // the final counter snapshot. Drop it next to the results.
    let mut manifest = results.manifest;
    manifest.name = "quickstart".into();
    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/MANIFEST_quickstart.json";
    manifest.write_to(path).expect("write manifest");
    println!(
        "manifest: {path} ({:.0} events/s, {} events)",
        manifest.events_per_sec, manifest.events_processed
    );
}
